"""Lockset and lock-order project rules over the call graph.

One memoized :func:`analyze_concurrency` pass computes everything the
four ``conc-*`` rules report, so ``--select conc-lock-escape`` does not
re-run the fixpoints three more times (the same bargain as the absint
rules).  The pass:

1. **discovers thread roots** -- ``threading.Thread(target=...)`` spawn
   sites, ``threading.Thread`` subclasses' ``run`` methods, and executor
   ``submit``/``map_tasks`` dispatch targets -- and computes, per
   function, the set of *contexts* (spawned roots + the main thread)
   that can reach it through the resolved call graph;
2. **propagates locksets** interprocedurally: ``held_in(f)`` is the
   intersection over all call sites of the caller's locks plus the
   locks held around the site (Eraser's meet), and ``held_any(f)`` the
   union (for the deadlock may-analysis).  A function nobody in the
   library calls is an API entry point and starts lock-free;
3. **checks shared state**: an attribute accessed from two or more
   contexts with at least one post-``__init__`` write must have a
   non-empty common lockset (``conc-unlocked-shared-write``), and when
   its writes *are* consistently guarded, every cross-thread read must
   hold the same lock (``conc-lock-escape``).  A class may opt out with
   a ``lint-concurrency: single-writer`` docstring tag when an external
   happens-before (``Thread.join``, a build-then-publish structure, a
   single-writer ring) makes the lock-free sharing intentional; the
   scoped form ``single-writer attr1 attr2`` exempts only the named
   attributes so the rest of the class stays checked;
4. **orders locks**: every acquisition while other locks are held adds
   held -> acquired edges; a cycle is a potential deadlock
   (``conc-lock-order-cycle``), and a ``Queue.put/get``, ``join``,
   ``wait``, ``result`` or executor dispatch made while any lock is
   held is the classic streaming-service stall shape
   (``conc-blocking-under-lock``).

The analysis is deliberately FP-averse like the rest of the package:
receivers resolve only through ``self``, constructor-typed attributes
and locals, or module globals; everything else stays unnamed and is
never flagged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.concurrency.extract import (
    FunctionConcurrency,
    HeldCall,
    ModuleConcurrency,
    SharedAccess,
)
from repro.analysis.engine import Finding
from repro.analysis.project import (
    CallSummary,
    ClassSummary,
    ModuleSummary,
    ProjectIndex,
    ProjectRule,
)

__all__ = [
    "RULE_UNLOCKED_SHARED_WRITE",
    "RULE_LOCK_ESCAPE",
    "RULE_LOCK_ORDER_CYCLE",
    "RULE_BLOCKING_UNDER_LOCK",
    "MAIN_CONTEXT",
    "ConcurrencyResult",
    "analyze_concurrency",
    "UnlockedSharedWriteRule",
    "LockEscapeRule",
    "LockOrderCycleRule",
    "BlockingUnderLockRule",
    "CONCURRENCY_RULES",
]

RULE_UNLOCKED_SHARED_WRITE = "conc-unlocked-shared-write"
RULE_LOCK_ESCAPE = "conc-lock-escape"
RULE_LOCK_ORDER_CYCLE = "conc-lock-order-cycle"
RULE_BLOCKING_UNDER_LOCK = "conc-blocking-under-lock"

#: context tag for code reached from no spawned thread root
MAIN_CONTEXT = "<main>"

#: methods that run before (or outside) any sharing: their accesses are
#: initialization, not races
_INIT_PHASE = frozenset({"__init__", "__new__", "__getstate__", "__setstate__"})

#: method names shared with dict/list/set/str/Queue/ndarray: a call
#: ``x.get(...)`` on an untyped receiver must NOT resolve to the
#: project's sole ``get`` method -- the receiver is almost always a
#: builtin.  Typed receivers (``self._registry.get``) still resolve.
_AMBIENT_ATTRS = frozenset(
    {
        "add",
        "append",
        "astype",
        "clear",
        "copy",
        "count",
        "discard",
        "extend",
        "flush",
        "format",
        "get",
        "index",
        "insert",
        "items",
        "join",
        "keys",
        "max",
        "mean",
        "min",
        "pop",
        "popitem",
        "put",
        "quantile",
        "read",
        "remove",
        "reshape",
        "setdefault",
        "sort",
        "split",
        "std",
        "strip",
        "sum",
        "update",
        "values",
        "write",
    }
)

#: method names that block the calling thread
_BLOCKING_ATTRS = frozenset(
    {"put", "get", "join", "wait", "result", "submit", "map_tasks"}
)

#: receiver-name tokens that mark a queue/thread/executor-ish object
_BLOCKING_RECV_TOKENS = frozenset(
    {
        "queue",
        "inbox",
        "outbox",
        "jobs",
        "thread",
        "threads",
        "dispatcher",
        "drain",
        "worker",
        "workers",
        "pool",
        "executor",
        "future",
        "futures",
        "event",
        "barrier",
        "cond",
        "condition",
    }
)


@dataclass
class ConcurrencyResult:
    """Everything one whole-project concurrency pass produced."""

    findings: List[Finding] = field(default_factory=list)
    #: thread-root qualname -> "thread" / "dispatch"
    entries: Dict[str, str] = field(default_factory=dict)


@dataclass
class _Func:
    """One library function with its module and concurrency facts."""

    qual: str
    summary: ModuleSummary
    facts: FunctionConcurrency
    cls_qual: Optional[str] = None
    cls: Optional[ClassSummary] = None


@dataclass
class _StateAccess:
    """One shared-state access, resolved and lockset-annotated."""

    func: _Func
    attr_line: int
    attr_col: int
    kind: str
    lockset: FrozenSet[str]
    contexts: FrozenSet[str]


def _short(qual: str) -> str:
    """Last two components of a qualified name, for messages."""
    parts = qual.rsplit(".", 2)
    return ".".join(parts[-2:]) if len(parts) > 1 else qual


def _name_tokens(name: str) -> Set[str]:
    return {t for t in name.lower().split("_") if t}


class _Analyzer:
    """Builds the concurrency model and evaluates all four rules."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self.funcs: Dict[str, _Func] = {}
        #: caller -> [(callee, canonical locks held at the site)]
        self.edges: Dict[str, List[Tuple[str, FrozenSet[str]]]] = {}
        self.incoming: Dict[str, List[Tuple[str, FrozenSet[str]]]] = {}
        self.entries: Dict[str, str] = {}
        self.contexts: Dict[str, FrozenSet[str]] = {}
        self.held_in: Dict[str, FrozenSet[str]] = {}
        self.held_any: Dict[str, FrozenSet[str]] = {}
        self.findings: List[Finding] = []
        self._thread_class_memo: Dict[str, bool] = {}

    # -- model construction ------------------------------------------------

    def run(self) -> ConcurrencyResult:
        self._collect_functions()
        self._discover_entries()
        self._build_edges()
        self._compute_contexts()
        self._propagate_locksets()
        self._check_shared_state()
        self._check_lock_order()
        self._check_blocking_under_lock()
        self.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return ConcurrencyResult(findings=self.findings, entries=dict(self.entries))

    def _collect_functions(self) -> None:
        for summary in self.index.summaries:
            if summary.is_test or not summary.concurrency:
                continue
            prefix = summary.module or summary.path
            conc = ModuleConcurrency.from_dict(summary.concurrency)
            by_class = {c.name: c for c in summary.classes}
            for facts in conc.functions:
                qual = f"{prefix}.{facts.qualname}"
                head = facts.qualname.split(".")[0]
                cls = by_class.get(head)
                self.funcs[qual] = _Func(
                    qual=qual,
                    summary=summary,
                    facts=facts,
                    cls_qual=f"{prefix}.{head}" if cls is not None else None,
                    cls=cls,
                )

    def _is_thread_class(self, summary: ModuleSummary, cls: ClassSummary) -> bool:
        key = f"{summary.module or summary.path}.{cls.name}"
        memo = self._thread_class_memo.get(key)
        if memo is not None:
            return memo
        self._thread_class_memo[key] = False  # break base-class cycles
        result = False
        for base in cls.bases:
            resolved = self.index.resolve_constructor(summary, base)
            if resolved is not None:
                base_summary, base_cls = self.index.classes[resolved]
                if self._is_thread_class(base_summary, base_cls):
                    result = True
                    break
            elif base.split(".")[-1] == "Thread":
                result = True
                break
        self._thread_class_memo[key] = result
        return result

    def _resolve_target(self, fn: _Func, target: str) -> Optional[str]:
        """Qualified function a spawn/dispatch target text names."""
        resolved = self.index.resolve_callee(
            fn.summary, CallSummary(target, target.split(".")[-1], 0, 0)
        )
        if resolved in self.index.functions:
            return resolved
        if "." not in target:
            nested = f"{fn.qual}.<locals>.{target}"
            if nested in self.index.functions:
                return nested
        return None

    def _discover_entries(self) -> None:
        from repro.analysis.parallel import _dispatch_roots

        for fn in self.funcs.values():
            for spawn in fn.facts.spawns:
                target = self._resolve_target(fn, spawn.target)
                if target is not None:
                    self.entries.setdefault(target, spawn.kind)
        # map_tasks tasks that hide behind a partial or a local variable:
        # parallel.py already resolves those argument shapes.
        for summary, _site, root in _dispatch_roots(self.index):
            if not summary.is_test and root in self.funcs:
                self.entries.setdefault(root, "dispatch")
        for summary in self.index.summaries:
            if summary.is_test:
                continue
            prefix = summary.module or summary.path
            for cls in summary.classes:
                if "run" in cls.methods and self._is_thread_class(summary, cls):
                    self.entries.setdefault(f"{prefix}.{cls.name}.run", "thread")

    def _canon_lock(self, fn: _Func, text: str) -> str:
        """Project-wide identity of a lock expression, best effort."""
        parts = text.split(".")
        module = fn.summary.module or fn.summary.path
        if parts[0] == "self" and fn.cls_qual is not None:
            if len(parts) == 2:
                return f"{fn.cls_qual}.{parts[1]}"
            if len(parts) == 3 and fn.cls is not None:
                ctor = fn.cls.attr_types.get(parts[1])
                target = (
                    self.index.resolve_constructor(fn.summary, ctor)
                    if ctor is not None
                    else None
                )
                if target is not None:
                    return f"{target}.{parts[2]}"
            return f"{fn.cls_qual}.{'.'.join(parts[1:])}"
        if parts[0] in fn.summary.module_level_names:
            return f"{module}.{text}"
        # parameter/local locks only match within their own function
        return f"{fn.qual}:{text}"

    def _canon_held(self, fn: _Func, held: Tuple[str, ...]) -> FrozenSet[str]:
        return frozenset(self._canon_lock(fn, h) for h in held)

    def _receiver_class(
        self, fn: _Func, access: SharedAccess
    ) -> Tuple[Optional[str], Optional[ClassSummary]]:
        """(owner qualname, owner class) of an access's receiver."""
        if access.is_global:
            return fn.summary.module or fn.summary.path, None
        if access.recv == "self":
            return fn.cls_qual, fn.cls
        if access.recv.startswith("self.") and fn.cls is not None:
            attr = access.recv.split(".", 1)[1]
            ctor = fn.cls.attr_types.get(attr)
            if ctor is not None and ctor.split(".")[-1] == "local":
                return None, None  # threading.local: per-thread by design
            target = (
                self.index.resolve_constructor(fn.summary, ctor)
                if ctor is not None
                else None
            )
            if target is not None:
                return target, self.index.classes[target][1]
            if fn.cls_qual is not None:
                return f"{fn.cls_qual}.{attr}", None
            return None, None
        if access.recv_type is not None:
            target = self.index.resolve_constructor(fn.summary, access.recv_type)
            if target is not None:
                return target, self.index.classes[target][1]
        return None, None

    def _resolve_call(self, fn: _Func, call: HeldCall) -> Optional[str]:
        if call.recv_type is not None:
            target = self.index.resolve_constructor(fn.summary, call.recv_type)
            if target is not None:
                cls = self.index.classes[target][1]
                if call.attr in cls.methods:
                    return f"{target}.{call.attr}"
                return None
        resolved = self.index.resolve_callee(
            fn.summary,
            CallSummary(call.callee, call.attr, call.line, call.col),
            unique_attr=call.attr not in _AMBIENT_ATTRS,
        )
        if resolved in self.index.functions:
            return resolved
        if resolved in self.index.classes:
            init = f"{resolved}.__init__"
            if init in self.index.functions:
                return init
        if "." not in call.callee:
            nested = f"{fn.qual}.<locals>.{call.callee}"
            if nested in self.index.functions:
                return nested
        return None

    def _build_edges(self) -> None:
        for fn in self.funcs.values():
            out: List[Tuple[str, FrozenSet[str]]] = []
            for call in fn.facts.calls:
                target = self._resolve_call(fn, call)
                if target is not None and target in self.funcs:
                    out.append((target, self._canon_held(fn, call.held)))
            # a property/method read through a typed receiver is an edge
            for access in fn.facts.accesses:
                if access.kind != "read":
                    continue
                owner, owner_cls = self._receiver_class(fn, access)
                if (
                    owner is not None
                    and owner_cls is not None
                    and access.attr in owner_cls.methods
                ):
                    target = f"{owner}.{access.attr}"
                    if target in self.funcs:
                        out.append((target, self._canon_held(fn, access.held)))
            self.edges[fn.qual] = out
            for target, held in out:
                self.incoming.setdefault(target, []).append((fn.qual, held))

    def _reach(self, roots: List[str]) -> Set[str]:
        seen: Set[str] = set()
        stack = [r for r in roots if r in self.funcs]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(
                t for t, _ in self.edges.get(current, ()) if t not in seen
            )
        return seen

    def _compute_contexts(self) -> None:
        tagged: Dict[str, Set[str]] = {q: set() for q in self.funcs}
        for entry in self.entries:
            for reached in self._reach([entry]):
                tagged[reached].add(entry)
        main_roots = [
            q
            for q in self.funcs
            if q not in self.entries and not self.incoming.get(q)
        ]
        for reached in self._reach(main_roots):
            tagged[reached].add(MAIN_CONTEXT)
        for qual, tags in tagged.items():
            # a function nothing reaches is itself a public entry point
            self.contexts[qual] = frozenset(tags or {MAIN_CONTEXT})

    def _propagate_locksets(self) -> None:
        top = None
        held_in: Dict[str, Optional[FrozenSet[str]]] = {}
        for qual in self.funcs:
            rootlike = qual in self.entries or not self.incoming.get(qual)
            held_in[qual] = frozenset() if rootlike else top
        for _ in range(len(self.funcs) + 2):
            changed = False
            for qual in self.funcs:
                if qual in self.entries or not self.incoming.get(qual):
                    continue
                metas = [
                    held_in[caller] | site_held
                    for caller, site_held in self.incoming[qual]
                    if caller in held_in and held_in[caller] is not top
                ]
                new: Optional[FrozenSet[str]] = top
                if metas:
                    common = metas[0]
                    for m in metas[1:]:
                        common &= m
                    new = common
                if new != held_in[qual]:
                    held_in[qual] = new
                    changed = True
            if not changed:
                break
        self.held_in = {
            q: (v if v is not None else frozenset()) for q, v in held_in.items()
        }

        held_any: Dict[str, FrozenSet[str]] = {
            qual: frozenset() for qual in self.funcs
        }
        for _ in range(len(self.funcs) + 2):
            changed = False
            for qual in self.funcs:
                if qual in self.entries:
                    continue
                merged = held_any[qual]
                for caller, site_held in self.incoming.get(qual, ()):
                    if caller in held_any:
                        merged = merged | held_any[caller] | site_held
                if merged != held_any[qual]:
                    held_any[qual] = merged
                    changed = True
            if not changed:
                break
        self.held_any = held_any

    # -- rule 1 + 2: lockset discipline ------------------------------------

    def _context_phrase(self, contexts: FrozenSet[str]) -> str:
        names = []
        for ctx in sorted(contexts):
            if ctx == MAIN_CONTEXT:
                names.append("the main thread")
            elif self.entries.get(ctx) == "dispatch":
                names.append(f"executor tasks via `{_short(ctx)}`")
            else:
                names.append(f"thread `{_short(ctx)}`")
        return " and ".join(names)

    def _check_shared_state(self) -> None:
        states: Dict[Tuple[str, str], List[_StateAccess]] = {}
        exempt_owner: Set[str] = set()
        exempt_attr: Set[Tuple[str, str]] = set()
        for fn in self.funcs.values():
            leaf = fn.qual.rsplit(".", 1)[-1]
            if leaf in _INIT_PHASE:
                continue
            base = self.held_in.get(fn.qual, frozenset())
            for access in fn.facts.accesses:
                owner, owner_cls = self._receiver_class(fn, access)
                if owner is None:
                    continue
                # a module-level global has no attr of its own: key the
                # state on the variable name so two globals in one
                # module stay distinct states
                attr = access.attr or (access.recv if access.is_global else "")
                if owner_cls is not None:
                    if owner_cls.single_writer:
                        if owner_cls.single_writer_attrs:
                            for name in owner_cls.single_writer_attrs:
                                exempt_attr.add((owner, name))
                        else:
                            exempt_owner.add(owner)
                    if access.attr in owner_cls.methods:
                        continue  # handled as a call edge
                states.setdefault((owner, attr), []).append(
                    _StateAccess(
                        func=fn,
                        attr_line=access.line,
                        attr_col=access.col,
                        kind=access.kind,
                        lockset=base | self._canon_held(fn, access.held),
                        contexts=self.contexts.get(
                            fn.qual, frozenset({MAIN_CONTEXT})
                        ),
                    )
                )

        for (owner, attr), accesses in sorted(states.items()):
            if owner in exempt_owner or (owner, attr) in exempt_attr:
                continue
            contexts: Set[str] = set()
            for access in accesses:
                contexts.update(access.contexts)
            writes = [a for a in accesses if a.kind == "write"]
            if len(contexts) < 2 or not writes:
                continue
            common_all = frozenset.intersection(*(a.lockset for a in accesses))
            if common_all:
                continue
            display = _short(f"{owner}.{attr}") if attr else _short(owner)
            write_common = frozenset.intersection(*(a.lockset for a in writes))
            if write_common:
                guard = _short(sorted(write_common)[0])
                for access in accesses:
                    if access.kind == "write" or access.lockset & write_common:
                        continue
                    self.findings.append(
                        Finding(
                            path=access.func.summary.path,
                            line=access.attr_line,
                            col=access.attr_col,
                            rule=RULE_LOCK_ESCAPE,
                            message=(
                                f"`{display}` is guarded by `{guard}` at every "
                                f"write but read here with no lock held; it is "
                                f"shared between {self._context_phrase(contexts)}"
                            ),
                        )
                    )
                continue
            anchors = [w for w in writes if not w.lockset] or writes
            seen_sites: Set[Tuple[str, int]] = set()
            for write in anchors:
                site = (write.func.summary.path, write.attr_line)
                if site in seen_sites:
                    continue
                seen_sites.add(site)
                self.findings.append(
                    Finding(
                        path=write.func.summary.path,
                        line=write.attr_line,
                        col=write.attr_col,
                        rule=RULE_UNLOCKED_SHARED_WRITE,
                        message=(
                            f"`{display}` is written here but shared between "
                            f"{self._context_phrase(contexts)} with no common "
                            f"lock; guard every access with one lock or tag "
                            f"the owning class `lint-concurrency: single-writer`"
                        ),
                    )
                )

    # -- rule 3: lock-order cycles -----------------------------------------

    def _check_lock_order(self) -> None:
        #: (held, acquired) -> first site (path, line, col, func qual)
        order: Dict[Tuple[str, str], Tuple[str, int, int, str]] = {}
        for fn in self.funcs.values():
            base = self.held_any.get(fn.qual, frozenset())
            for acq in fn.facts.acquires:
                lock = self._canon_lock(fn, acq.lock)
                pre = base | self._canon_held(fn, acq.held)
                for held in pre:
                    if held == lock:
                        continue
                    order.setdefault(
                        (held, lock),
                        (fn.summary.path, acq.line, acq.col, fn.qual),
                    )
        adjacency: Dict[str, Set[str]] = {}
        for held, lock in order:
            adjacency.setdefault(held, set()).add(lock)

        reported: Set[FrozenSet[str]] = set()
        for start in sorted(adjacency):
            cycle = self._find_cycle(adjacency, start)
            if cycle is None or frozenset(cycle) in reported:
                continue
            reported.add(frozenset(cycle))
            pairs = list(zip(cycle, cycle[1:] + cycle[:1]))
            path, line, col, _ = order[pairs[-1]]
            chain = " -> ".join(_short(lock) for lock in [*cycle, cycle[0]])
            legs = "; ".join(
                f"`{_short(b)}` acquired at {order[(a, b)][0]}:{order[(a, b)][1]}"
                f" while holding `{_short(a)}`"
                for a, b in pairs
            )
            self.findings.append(
                Finding(
                    path=path,
                    line=line,
                    col=col,
                    rule=RULE_LOCK_ORDER_CYCLE,
                    message=(
                        f"potential deadlock: lock acquisition order forms a "
                        f"cycle {chain} ({legs}); pick one global order"
                    ),
                )
            )

    @staticmethod
    def _find_cycle(
        adjacency: Dict[str, Set[str]], start: str
    ) -> Optional[List[str]]:
        """Shortest held-order path from ``start`` back to itself."""
        parents: Dict[str, str] = {}
        queue = [start]
        seen = {start}
        while queue:
            current = queue.pop(0)
            for nxt in sorted(adjacency.get(current, ())):
                if nxt == start:
                    path = [current]
                    while current != start:
                        current = parents[current]
                        path.append(current)
                    return list(reversed(path))
                if nxt not in seen:
                    seen.add(nxt)
                    parents[nxt] = current
                    queue.append(nxt)
        return None

    # -- rule 4: blocking calls under a lock --------------------------------

    def _blocking_receiver(self, call: HeldCall) -> bool:
        if call.attr in ("submit", "map_tasks"):
            return True
        parts = call.callee.split(".")
        if len(parts) < 2:
            return False
        if _name_tokens(parts[-2]) & _BLOCKING_RECV_TOKENS:
            return True
        if call.recv_type is not None:
            leaf = call.recv_type.split(".")[-1]
            if "Queue" in leaf or "Thread" in leaf or "Executor" in leaf:
                return True
        return False

    def _check_blocking_under_lock(self) -> None:
        for fn in self.funcs.values():
            base = self.held_in.get(fn.qual, frozenset())
            for call in fn.facts.calls:
                if call.attr not in _BLOCKING_ATTRS:
                    continue
                held = base | self._canon_held(fn, call.held)
                if not held or not self._blocking_receiver(call):
                    continue
                # joining/waiting on the lock's own class is still a stall
                lock = _short(sorted(held)[0])
                self.findings.append(
                    Finding(
                        path=fn.summary.path,
                        line=call.line,
                        col=call.col,
                        rule=RULE_BLOCKING_UNDER_LOCK,
                        message=(
                            f"blocking call `{call.callee}` made while holding "
                            f"`{lock}`; a stalled queue or worker wedges every "
                            f"thread contending for the lock -- move the "
                            f"blocking call outside the critical section"
                        ),
                    )
                )


def analyze_concurrency(index: ProjectIndex) -> ConcurrencyResult:
    """Whole-project concurrency analysis, memoized per index."""
    cached = getattr(index, "_concurrency_result", None)
    if cached is None:
        cached = _Analyzer(index).run()
        index._concurrency_result = cached  # type: ignore[attr-defined]
    return cached


class _ConcurrencyRule(ProjectRule):
    """Replays the memoized concurrency pass, filtered to one rule."""

    library_only = True

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        for finding in analyze_concurrency(index).findings:
            if finding.rule == self.name:
                yield finding


class UnlockedSharedWriteRule(_ConcurrencyRule):
    name = RULE_UNLOCKED_SHARED_WRITE
    description = (
        "an attribute written from one thread context and accessed from "
        "another has an empty common lockset (Eraser-style race)"
    )


class LockEscapeRule(_ConcurrencyRule):
    name = RULE_LOCK_ESCAPE
    description = (
        "an attribute consistently guarded at its writes is also read "
        "with no lock held on a multi-thread-reachable path"
    )


class LockOrderCycleRule(_ConcurrencyRule):
    name = RULE_LOCK_ORDER_CYCLE
    description = (
        "the held-while-acquiring graph over all call paths contains a "
        "cycle: two threads can deadlock by acquiring in opposite order"
    )


class BlockingUnderLockRule(_ConcurrencyRule):
    name = RULE_BLOCKING_UNDER_LOCK
    description = (
        "a blocking queue/thread/executor call (put/get/join/wait/"
        "result/submit) is made while a lock is held"
    )


CONCURRENCY_RULES = (
    UnlockedSharedWriteRule(),
    LockEscapeRule(),
    LockOrderCycleRule(),
    BlockingUnderLockRule(),
)
