"""Concurrency analysis: locksets, lock order, and a runtime sanitizer.

The streaming service (PR 7) and compiled capture engine (PR 8) made the
reproduction genuinely multi-threaded; this package proves the sharing
discipline instead of trusting soak luck.  Static side:
:mod:`repro.analysis.concurrency.extract` compresses each module's lock
acquisitions, shared-state accesses and thread spawns into the cacheable
:class:`~repro.analysis.project.ModuleSummary`, and
:mod:`repro.analysis.concurrency.rules` runs Eraser-style lockset
intersection and a held-while-acquiring order graph over the project
call graph (``conc-unlocked-shared-write``, ``conc-lock-escape``,
``conc-lock-order-cycle``, ``conc-blocking-under-lock``).  Dynamic side:
:mod:`repro.analysis.concurrency.runtime_sanitizer` instruments
``threading.Lock``/``RLock`` to record the acquisition-order graph at
runtime and fail on cycles or hold-time outliers.
"""

from __future__ import annotations

from repro.analysis.concurrency.extract import (
    ModuleConcurrency,
    extract_concurrency,
)
from repro.analysis.concurrency.rules import (
    CONCURRENCY_RULES,
    ConcurrencyResult,
    analyze_concurrency,
)

__all__ = [
    "CONCURRENCY_RULES",
    "ConcurrencyResult",
    "ModuleConcurrency",
    "analyze_concurrency",
    "extract_concurrency",
]
