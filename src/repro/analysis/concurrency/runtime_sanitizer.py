"""Runtime lock-order sanitizer: instrumented ``threading`` locks.

The static rules in :mod:`repro.analysis.concurrency.rules` prove lock
discipline over the call edges the lint engine can resolve; this module
checks the same properties on the locks the program *actually* takes.
Inside :func:`lock_sanitizer`, every lock constructed through
``threading.Lock`` / ``threading.RLock`` is replaced by a wrapper that
records, per thread, the stack of currently-held locks and one global
acquisition-order graph: an edge ``a -> b`` whenever ``b`` is acquired
while ``a`` is held.  Locks are named by creation site, so every
``self._lock = threading.Lock()`` in the library maps to a stable node
that matches the static analysis' canonical names in spirit.

A cycle in the order graph is a potential deadlock even when the soak
got lucky.  With ``fail_fast`` (the default) the acquire that would
close a cycle raises :class:`LockOrderViolation` *before* blocking, so
a test fails with the full cycle named instead of hanging until the CI
timeout.  Hold times are tracked per lock; ``max_hold_seconds``
converts outliers into violations surfaced by
:meth:`LockSanitizerReport.check` -- the shape of bug where a capture
runs under the service lock and every other thread convoys behind it.

Opt in from the test suite with ``REPRO_SANITIZE_LOCKS=1`` (the
``tests/conftest.py`` fixture) or from the CLI with
``repro soak --sanitize-locks``.
"""

from __future__ import annotations

import _thread
import os
import sys
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Set, Tuple

__all__ = [
    "LockOrderViolation",
    "LockSanitizerReport",
    "SanitizedLock",
    "SanitizedRLock",
    "lock_sanitizer",
]


class LockOrderViolation(RuntimeError):
    """Two locks were taken in both orders (or held past the budget)."""

    def __init__(self, message: str, cycle: Tuple[str, ...] = ()):
        super().__init__(message)
        #: lock names along the offending cycle, in acquisition order
        self.cycle = tuple(cycle)


def _caller_site() -> str:
    """``dir/file.py:line`` of the nearest frame outside this machinery."""
    frame = sys._getframe(1)
    here = __file__
    while frame is not None:
        filename = frame.f_code.co_filename
        if filename != here and not filename.endswith("threading.py"):
            parts = filename.replace(os.sep, "/").split("/")
            return "/".join(parts[-2:]) + f":{frame.f_lineno}"
        frame = frame.f_back
    return "<unknown>"


class _Sanitizer:
    """Shared state behind one :func:`lock_sanitizer` window."""

    def __init__(self, fail_fast: bool, max_hold_seconds: Optional[float]):
        self.fail_fast = fail_fast
        self.max_hold_seconds = max_hold_seconds
        self.n_locks = 0
        #: (held name, acquired name) -> site string of the first witness
        self.edges: Dict[Tuple[str, str], str] = {}
        self.adjacency: Dict[str, Set[str]] = {}
        self.worst_holds: Dict[str, float] = {}
        self.violations: List[str] = []
        self._reported: Set[frozenset] = set()
        # the graph's own mutex is a raw _thread lock: it must never be
        # sanitized, and it is never held while taking a user lock
        self._meta = _thread.allocate_lock()
        self._tls = threading.local()

    # -- per-thread held stack -----------------------------------------

    def _held(self) -> List[Tuple["SanitizedLock", float]]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    # -- graph maintenance ---------------------------------------------

    def _path(self, start: str, goal: str) -> Optional[List[str]]:
        """Shortest ``start -> ... -> goal`` path in the order graph."""
        if start == goal:
            return [start]
        parents: Dict[str, str] = {}
        frontier = [start]
        seen = {start}
        while frontier:
            nxt: List[str] = []
            for node in frontier:
                for succ in sorted(self.adjacency.get(node, ())):
                    if succ in seen:
                        continue
                    parents[succ] = node
                    if succ == goal:
                        path = [goal]
                        while path[-1] != start:
                            path.append(parents[path[-1]])
                        return path[::-1]
                    seen.add(succ)
                    nxt.append(succ)
            frontier = nxt
        return None

    def before_acquire(self, lock: "SanitizedLock", blocking: bool) -> None:
        """Record order edges; in fail-fast mode refuse to close a cycle.

        Runs *before* the underlying acquire can block, so a would-be
        deadlock surfaces as an exception in the acquiring thread while
        it still holds its locks (the ``with`` statements unwind and
        release them).
        """
        held = self._held()
        if not held:
            return
        failure: Optional[LockOrderViolation] = None
        with self._meta:
            for other, _ in held:
                if other is lock or other.name == lock.name:
                    continue
                # existing path acquired -> ... -> held means the new
                # held -> acquired edge closes a cycle
                back = self._path(lock.name, other.name)
                edge = (other.name, lock.name)
                if edge not in self.edges:
                    self.edges[edge] = _caller_site()
                    self.adjacency.setdefault(other.name, set()).add(lock.name)
                if back is None:
                    continue
                cycle = tuple(back) + (back[0],)
                key = frozenset(back)
                if key in self._reported:
                    continue
                self._reported.add(key)
                legs = " -> ".join(cycle)
                message = (
                    f"lock order cycle: `{other.name}` is held while "
                    f"acquiring `{lock.name}`, but the reverse order "
                    f"{legs} was already observed; two threads "
                    f"interleaving these paths deadlock"
                )
                self.violations.append(message)
                if self.fail_fast and blocking and failure is None:
                    failure = LockOrderViolation(message, cycle)
        if failure is not None:
            raise failure

    def after_acquire(self, lock: "SanitizedLock") -> None:
        self._held().append((lock, time.perf_counter()))

    def on_release(self, lock: "SanitizedLock") -> None:
        held = self._held()
        for i in range(len(held) - 1, -1, -1):
            if held[i][0] is lock:
                _, t_acquired = held.pop(i)
                hold = time.perf_counter() - t_acquired
                with self._meta:
                    if hold > self.worst_holds.get(lock.name, 0.0):
                        self.worst_holds[lock.name] = hold
                    if (
                        self.max_hold_seconds is not None
                        and hold > self.max_hold_seconds
                    ):
                        self.violations.append(
                            f"lock `{lock.name}` held for {hold:.3f}s "
                            f"(budget {self.max_hold_seconds:.3f}s); long "
                            f"holds convoy every other thread"
                        )
                return


class SanitizedLock:
    """Drop-in ``threading.Lock`` that reports to a :class:`_Sanitizer`."""

    def __init__(self, sanitizer: _Sanitizer, name: str):
        self._san = sanitizer
        self.name = name
        self._inner = _thread.allocate_lock()
        with sanitizer._meta:
            sanitizer.n_locks += 1

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._san.before_acquire(self, blocking)
        ok = self._inner.acquire(blocking, timeout)
        if ok:
            self._san.after_acquire(self)
        return ok

    def release(self) -> None:
        self._inner.release()
        self._san.on_release(self)

    def locked(self) -> bool:
        return self._inner.locked()

    def _at_fork_reinit(self) -> None:
        # logging and multiprocessing reinitialize their locks in the
        # child after a fork; mirror _thread.LockType's protocol
        self._inner = _thread.allocate_lock()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "locked" if self._inner.locked() else "unlocked"
        return f"<{type(self).__name__} {self.name} {state}>"


class SanitizedRLock(SanitizedLock):
    """Drop-in ``threading.RLock`` (reentrant; Condition-compatible)."""

    def __init__(self, sanitizer: _Sanitizer, name: str):
        super().__init__(sanitizer, name)
        self._owner: Optional[int] = None
        self._count = 0

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        me = threading.get_ident()
        if self._owner == me:
            self._count += 1
            return True
        self._san.before_acquire(self, blocking)
        ok = self._inner.acquire(blocking, timeout)
        if ok:
            self._owner = me
            self._count = 1
            self._san.after_acquire(self)
        return ok

    def release(self) -> None:
        if self._owner != threading.get_ident():
            raise RuntimeError("cannot release un-acquired lock")
        self._count -= 1
        if self._count == 0:
            self._owner = None
            self._inner.release()
            self._san.on_release(self)

    def _at_fork_reinit(self) -> None:
        super()._at_fork_reinit()
        self._owner = None
        self._count = 0

    # _thread.RLock protocol: multiprocessing's resource tracker asks
    # for the current recursion depth before forking its daemon
    def _recursion_count(self) -> int:
        return self._count if self._owner == threading.get_ident() else 0

    # threading.Condition protocol: release/restore the *full* recursion
    # depth around a wait
    def _is_owned(self) -> bool:
        return self._owner == threading.get_ident()

    def _release_save(self):
        state = (self._count, self._owner)
        self._count = 0
        self._owner = None
        self._inner.release()
        self._san.on_release(self)
        return state

    def _acquire_restore(self, state) -> None:
        self._san.before_acquire(self, True)
        self._inner.acquire()
        self._count, self._owner = state
        self._san.after_acquire(self)


class LockSanitizerReport:
    """Live view of one sanitizer window; JSON-able once it closes."""

    def __init__(self, sanitizer: _Sanitizer):
        self._san = sanitizer

    @property
    def n_locks(self) -> int:
        return self._san.n_locks

    @property
    def edges(self) -> List[Tuple[str, str]]:
        with self._san._meta:
            return sorted(self._san.edges)

    @property
    def violations(self) -> List[str]:
        with self._san._meta:
            return list(self._san.violations)

    def worst_holds(self, n: int = 5) -> List[Tuple[str, float]]:
        """The ``n`` longest observed single holds, worst first."""
        with self._san._meta:
            ranked = sorted(
                self._san.worst_holds.items(), key=lambda kv: -kv[1]
            )
        return ranked[:n]

    def check(self) -> None:
        """Raise :class:`LockOrderViolation` if anything was recorded."""
        violations = self.violations
        if violations:
            raise LockOrderViolation(
                "; ".join(violations) if len(violations) > 1 else violations[0]
            )

    def to_dict(self) -> Dict[str, object]:
        return {
            "locks_instrumented": self.n_locks,
            "order_edges": [list(edge) for edge in self.edges],
            "violations": self.violations,
            "worst_holds_seconds": {
                name: round(seconds, 6)
                for name, seconds in self.worst_holds(n=10)
            },
        }


@contextmanager
def lock_sanitizer(
    fail_fast: bool = True, max_hold_seconds: Optional[float] = None
) -> Iterator[LockSanitizerReport]:
    """Instrument every lock constructed inside the ``with`` block.

    Patches ``threading.Lock`` and ``threading.RLock`` so objects built
    in the window (services, queues, boards) get sanitized locks; locks
    created before or after are untouched.  Yields the live
    :class:`LockSanitizerReport`; call :meth:`~LockSanitizerReport.check`
    after the workload to fail on recorded violations when not using
    ``fail_fast``.
    """
    sanitizer = _Sanitizer(fail_fast, max_hold_seconds)
    report = LockSanitizerReport(sanitizer)
    orig_lock, orig_rlock = threading.Lock, threading.RLock

    def make_lock() -> SanitizedLock:
        return SanitizedLock(sanitizer, _caller_site())

    def make_rlock() -> SanitizedRLock:
        return SanitizedRLock(sanitizer, _caller_site())

    threading.Lock = make_lock  # type: ignore[assignment]
    threading.RLock = make_rlock  # type: ignore[assignment]
    try:
        yield report
    finally:
        threading.Lock = orig_lock  # type: ignore[assignment]
        threading.RLock = orig_rlock  # type: ignore[assignment]
