"""``python -m repro.analysis`` entry point."""

import os
import sys

from repro.analysis.cli import main

__all__: list = []

if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `python -m repro.analysis ... | head`
        # redirect stdout to devnull so the interpreter's exit flush
        # does not raise a second time, then report SIGPIPE's code
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(141)
