"""Command-line front end for signature-lint.

Usage::

    python -m repro.analysis [paths ...]
    python -m repro.analysis src --format json
    python -m repro.analysis src --format github   # CI annotations
    python -m repro.analysis src --format sarif    # code-scanning upload
    python -m repro.analysis src --cache-dir .lint-cache
    python -m repro.analysis src --stats           # findings-per-rule table
    python -m repro.analysis src --select num-div-zero,num-log-nonpositive
    python -m repro.analysis src --severity-threshold error
    python -m repro.analysis src --numerics-report # float32 certification
    python -m repro.analysis --list-rules
    python -m repro lint src          # same engine via the main CLI

Exit codes: ``0`` clean (or no finding at/above the severity
threshold), ``1`` findings reported, ``2`` usage or I/O error (unknown
rule name, missing path).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.analysis.driver import ProjectReport, analyze_project
from repro.analysis.engine import SEVERITY_LEVELS, Rule, severity_of

__all__ = [
    "build_parser",
    "format_sarif",
    "format_stats",
    "run_lint",
    "main",
]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


def _default_rules() -> List[Rule]:
    from repro.analysis import default_rules

    return list(default_rules())


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description=(
            "signature-lint: domain-aware static analysis for the repro "
            "library (unit-domain, determinism, API-surface, numerics, "
            "cross-module dataflow, parallel-safety, and batch-contract "
            "rules)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github", "sarif"),
        default="text",
        help=(
            "output format (default: text; github emits workflow-command "
            "annotations for CI, sarif emits a SARIF 2.1.0 log for the "
            "code-scanning tab)"
        ),
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        metavar="RULES",
        help="comma-separated rule names to skip",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=(
            "incremental-result cache directory; unchanged files are "
            "served from it and only edited files re-analyzed"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore --cache-dir and re-analyze every file",
    )
    parser.add_argument(
        "--severity-threshold",
        choices=tuple(SEVERITY_LEVELS),
        default="note",
        metavar="LEVEL",
        help=(
            "lowest severity (note|warning|error) that fails the run "
            "with exit code 1; lower-severity findings are still "
            "printed (default: note, i.e. any finding fails)"
        ),
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="append a findings-per-rule markdown table to the report",
    )
    parser.add_argument(
        "--numerics-report",
        action="store_true",
        help=(
            "emit the machine-readable float32 certification report "
            "(proven output intervals + error bounds per function) "
            "instead of findings"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the available rules and exit",
    )
    return parser


def _filter_rules(
    rules: Sequence[Rule], select: Optional[str], ignore: Optional[str]
) -> List[Rule]:
    known = {rule.name for rule in rules}
    chosen = list(rules)
    for option, names_csv in (("--select", select), ("--ignore", ignore)):
        if names_csv is None:
            continue
        names = {n.strip() for n in names_csv.split(",") if n.strip()}
        unknown = names - known
        if unknown:
            raise ValueError(
                f"{option}: unknown rule(s) {', '.join(sorted(unknown))}; "
                "see --list-rules"
            )
        if option == "--select":
            chosen = [r for r in chosen if r.name in names]
        else:
            chosen = [r for r in chosen if r.name not in names]
    return chosen


def _github_escape(text: str) -> str:
    """Escape message data for a GitHub workflow command."""
    return (
        text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    )


def format_sarif(report: ProjectReport, rules: Sequence[Rule]) -> dict:
    """SARIF 2.1.0 log for GitHub's Security / Code-scanning tab."""
    by_name = {rule.name: rule for rule in rules}
    rule_ids = sorted({f.rule for f in report.findings} | set(by_name))
    return {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "signature-lint",
                        "informationUri": (
                            "https://example.invalid/repro/docs/static_analysis"
                        ),
                        "rules": [
                            {
                                "id": rule_id,
                                "shortDescription": {
                                    "text": getattr(
                                        by_name.get(rule_id),
                                        "description",
                                        rule_id,
                                    )
                                    or rule_id
                                },
                                "defaultConfiguration": {
                                    "level": severity_of(rule_id, rules)
                                },
                            }
                            for rule_id in rule_ids
                        ],
                    }
                },
                "results": [
                    {
                        "ruleId": finding.rule,
                        "level": severity_of(finding.rule, rules),
                        "message": {"text": finding.message},
                        "locations": [
                            {
                                "physicalLocation": {
                                    "artifactLocation": {
                                        "uri": finding.path.replace("\\", "/")
                                    },
                                    "region": {
                                        "startLine": max(finding.line, 1),
                                        "startColumn": max(finding.col, 1),
                                    },
                                }
                            }
                        ],
                    }
                    for finding in report.findings
                ],
            }
        ],
    }


def format_stats(report: ProjectReport) -> str:
    """Findings-per-rule markdown table (``make lint-stats`` / job summary)."""
    lines = ["| rule | findings |", "| --- | ---: |"]
    counts = report.rule_counts()
    for rule_name, count in counts.items():
        lines.append(f"| `{rule_name}` | {count} |")
    lines.append(f"| **total** | **{len(report.findings)}** |")
    lines.append("")
    lines.append(
        f"{report.files} files ({report.analyzed} analyzed, "
        f"{report.cached} from cache)"
    )
    return "\n".join(lines)


def run_lint(
    paths: Sequence[str],
    fmt: str = "text",
    select: Optional[str] = None,
    ignore: Optional[str] = None,
    rules: Optional[Sequence[Rule]] = None,
    cache_dir: Optional[str] = None,
    stats: bool = False,
    severity_threshold: str = "note",
    numerics_report: bool = False,
) -> int:
    """Analyze ``paths`` and print a report; returns the exit code."""
    all_rules = list(rules) if rules is not None else _default_rules()
    try:
        chosen = _filter_rules(all_rules, select, ignore)
        if severity_threshold not in SEVERITY_LEVELS:
            raise ValueError(
                f"--severity-threshold: unknown level "
                f"`{severity_threshold}`; expected one of "
                f"{', '.join(SEVERITY_LEVELS)}"
            )
        report = analyze_project(paths, rules=chosen, cache_dir=cache_dir)
    except (ValueError, FileNotFoundError) as exc:
        print(f"repro.analysis: error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    if numerics_report:
        from repro.analysis.absint import certification_report
        from repro.analysis.project import ProjectIndex

        print(
            json.dumps(
                certification_report(ProjectIndex(report.summaries)), indent=2
            )
        )
        return EXIT_CLEAN
    findings = report.findings
    if fmt == "sarif":
        print(json.dumps(format_sarif(report, chosen), indent=2))
    elif fmt == "json":
        print(
            json.dumps(
                {
                    "version": 1,
                    "count": len(findings),
                    "files": report.files,
                    "analyzed": report.analyzed,
                    "cached": report.cached,
                    "findings": [f.to_dict() for f in findings],
                },
                indent=2,
            )
        )
    elif fmt == "github":
        for finding in findings:
            print(
                f"::error file={finding.path},line={finding.line},"
                f"col={finding.col},title={finding.rule}::"
                f"{_github_escape(finding.message)}"
            )
        noun = "finding" if len(findings) == 1 else "findings"
        print(f"signature-lint: {len(findings)} {noun}")
    else:
        for finding in findings:
            print(finding.format())
        noun = "finding" if len(findings) == 1 else "findings"
        print(f"signature-lint: {len(findings)} {noun}")
    if stats:
        print()
        print(format_stats(report))
    threshold = SEVERITY_LEVELS[severity_threshold]
    failing = [
        f
        for f in findings
        if SEVERITY_LEVELS.get(severity_of(f.rule, chosen), 1) >= threshold
    ]
    return EXIT_FINDINGS if failing else EXIT_CLEAN


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in _default_rules():
            print(f"{rule.name} [{rule.severity}]: {rule.description}")
        return EXIT_CLEAN
    return run_lint(
        args.paths,
        fmt=args.format,
        select=args.select,
        ignore=args.ignore,
        cache_dir=None if args.no_cache else args.cache_dir,
        stats=args.stats,
        severity_threshold=args.severity_threshold,
        numerics_report=args.numerics_report,
    )
