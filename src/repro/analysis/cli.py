"""Command-line front end for signature-lint.

Usage::

    python -m repro.analysis [paths ...]
    python -m repro.analysis src --format json
    python -m repro.analysis --list-rules
    python -m repro lint src          # same engine via the main CLI

Exit codes: ``0`` clean, ``1`` findings reported, ``2`` usage or I/O
error (unknown rule name, missing path).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.analysis.engine import Rule, analyze_paths

__all__ = ["build_parser", "run_lint", "main"]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


def _default_rules() -> List[Rule]:
    from repro.analysis import default_rules

    return list(default_rules())


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description=(
            "signature-lint: domain-aware static analysis for the repro "
            "library (unit-domain, determinism, API-surface, and numerics "
            "rules)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        metavar="RULES",
        help="comma-separated rule names to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the available rules and exit",
    )
    return parser


def _filter_rules(
    rules: Sequence[Rule], select: Optional[str], ignore: Optional[str]
) -> List[Rule]:
    known = {rule.name for rule in rules}
    chosen = list(rules)
    for option, names_csv in (("--select", select), ("--ignore", ignore)):
        if names_csv is None:
            continue
        names = {n.strip() for n in names_csv.split(",") if n.strip()}
        unknown = names - known
        if unknown:
            raise ValueError(
                f"{option}: unknown rule(s) {', '.join(sorted(unknown))}; "
                "see --list-rules"
            )
        if option == "--select":
            chosen = [r for r in chosen if r.name in names]
        else:
            chosen = [r for r in chosen if r.name not in names]
    return chosen


def run_lint(
    paths: Sequence[str],
    fmt: str = "text",
    select: Optional[str] = None,
    ignore: Optional[str] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> int:
    """Analyze ``paths`` and print a report; returns the exit code."""
    all_rules = list(rules) if rules is not None else _default_rules()
    try:
        chosen = _filter_rules(all_rules, select, ignore)
        findings = analyze_paths(paths, chosen)
    except (ValueError, FileNotFoundError) as exc:
        print(f"repro.analysis: error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    if fmt == "json":
        print(
            json.dumps(
                {
                    "version": 1,
                    "count": len(findings),
                    "findings": [f.to_dict() for f in findings],
                },
                indent=2,
            )
        )
    else:
        for finding in findings:
            print(finding.format())
        noun = "finding" if len(findings) == 1 else "findings"
        print(f"signature-lint: {len(findings)} {noun}")
    return EXIT_FINDINGS if findings else EXIT_CLEAN


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in _default_rules():
            print(f"{rule.name}: {rule.description}")
        return EXIT_CLEAN
    return run_lint(
        args.paths, fmt=args.format, select=args.select, ignore=args.ignore
    )
