"""Numerical-hygiene rules for library code.

Signature prediction is a numerical pipeline end to end (filters, SVD,
regression); three habits that corrupt such pipelines quietly are banned
from library code (tests are exempt -- ``library_only``):

* ``numerics-inplace-param`` -- writing into an ndarray *parameter*
  (``x[i] = ...``, ``x += ...``).  Callers hand the framework their
  signature matrices; mutating them in place turns a pure measurement
  function into an aliasing hazard.  Copy first (``x = x.copy()`` /
  ``np.asarray(x, dtype=float)``) or return a new array.
* ``numerics-float-equality`` -- ``==`` / ``!=`` against a non-zero
  float literal.  Comparing against exactly-representable ``0.0`` is the
  accepted sentinel idiom; anything else needs ``math.isclose`` /
  ``np.isclose`` or an explicit tolerance.
* ``numerics-bare-assert`` -- ``assert`` in library code.  Asserts
  vanish under ``python -O``, so a production flow run with
  optimizations keeps going past the violated invariant; raise
  ``ValueError`` / ``RuntimeError`` instead.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.engine import Finding, ModuleSource, Rule

__all__ = [
    "InplaceParamRule",
    "FloatEqualityRule",
    "BareAssertRule",
    "NUMERICS_RULES",
]


def _ndarray_params(func: ast.AST) -> Set[str]:
    """Parameter names annotated as (containing) ``ndarray``."""
    names: Set[str] = set()
    args = func.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if arg.annotation is None:
            continue
        try:
            annotation = ast.unparse(arg.annotation)
        except Exception:  # pragma: no cover - unparse is total on 3.9+
            continue
        if "ndarray" in annotation or "NDArray" in annotation:
            names.add(arg.arg)
    return names


def _rebound_names(func: ast.AST) -> Set[str]:
    """Names rebound by a plain assignment anywhere in the function body.

    ``x = np.asarray(x, dtype=float)`` (or ``x = x.copy()``) detaches the
    local from the caller's array, so later writes through ``x`` are
    safe; such parameters are excluded from the in-place check.
    """
    rebound: Set[str] = set()
    for stmt in ast.walk(func):
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    rebound.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if stmt.value is not None:
                rebound.add(stmt.target.id)
    return rebound


class InplaceParamRule(Rule):
    name = "numerics-inplace-param"
    description = (
        "in-place mutation of an ndarray parameter (subscript assignment "
        "or augmented assignment)"
    )
    library_only = True

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            tracked = _ndarray_params(func) - _rebound_names(func)
            if not tracked:
                continue
            for node in ast.walk(func):
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, (ast.AugAssign,)):
                    targets = [node.target]
                else:
                    continue
                for target in targets:
                    written = target
                    if isinstance(written, ast.Subscript):
                        written = written.value
                    elif isinstance(node, ast.Assign):
                        continue  # plain rebind, not a mutation
                    if isinstance(written, ast.Name) and written.id in tracked:
                        yield self.finding(
                            module,
                            node,
                            f"mutates ndarray parameter `{written.id}` in "
                            "place; copy it first (np.asarray(...).copy()) "
                            "or return a new array",
                        )


class FloatEqualityRule(Rule):
    name = "numerics-float-equality"
    description = (
        "== / != comparison against a non-zero float literal; use "
        "math.isclose / np.isclose or an explicit tolerance"
    )
    library_only = True

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for side in (left, right):
                    if (
                        isinstance(side, ast.Constant)
                        and isinstance(side.value, float)
                        and side.value != 0.0
                    ):
                        yield self.finding(
                            module,
                            node,
                            f"exact equality against float literal "
                            f"{side.value!r}; use math.isclose/np.isclose or "
                            "compare against a tolerance (== 0.0 sentinel "
                            "checks are allowed)",
                        )
                        break


class BareAssertRule(Rule):
    name = "numerics-bare-assert"
    description = (
        "assert statement in library code (stripped under python -O); "
        "raise ValueError/RuntimeError instead"
    )
    library_only = True

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assert):
                yield self.finding(
                    module,
                    node,
                    "assert in library code is stripped under `python -O`; "
                    "raise an explicit exception for runtime invariants",
                )


NUMERICS_RULES = (InplaceParamRule(), FloatEqualityRule(), BareAssertRule())
