"""Project-level analysis substrate: module summaries, symbols, call graph.

The per-file rules in :mod:`repro.analysis.units` & co. judge one AST at
a time; the dangerous bugs in a batched, executor-dispatched codebase
are *cross-module* -- a linear value flowing into a dB-expecting callee
two files away, a closure-captured RNG shipped through ``map_tasks``, a
per-device helper handed a ``(batch, n)`` matrix.  This module builds
the substrate those interprocedural rules run on:

* :func:`summarize_module` compresses one parsed file into a
  JSON-serializable :class:`ModuleSummary`: its imports, module-level
  names, classes, and one :class:`FunctionSummary` per function
  (parameters with inferred unit domains, locally-inferred return
  domain, every call site with per-argument domain/shape/kind
  information, global mutations, RNG captures).  Summaries are what the
  lint cache stores -- re-linting after a one-file edit re-parses one
  file and replays everything else from cache.
* :class:`ProjectIndex` resolves the summaries against each other:
  imports become fully-qualified names, call sites become edges in a
  call graph, and :meth:`ProjectIndex.reachable_from` answers "which
  functions can an executor-dispatched task reach?".

Inference is deliberately lightweight and *sound-ish*, not complete: a
name is classified only when the repo's naming conventions
(``*_db``/``*_dbm``/``*_hz``/``*_watts``, ``devices`` vs ``device``), a
``repro.dsp.units`` converter call, an explicit docstring tag
(``lint-domains: x=db, return=linear``), or a string annotation
(``x: "db"``) pins it down; everything else stays ``None`` and is never
flagged.  Attribute calls (``board.signature_batch``) resolve only when
the method name is unique across the project, so ambiguous names like
``predict`` never produce edges.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.engine import ModuleSource, Rule

__all__ = [
    "DOMAIN_GROUPS",
    "ArgSummary",
    "CallSummary",
    "ClassSummary",
    "FunctionSummary",
    "ModuleSummary",
    "ProjectIndex",
    "ProjectRule",
    "domain_group",
    "domain_of_name",
    "shape_of_name",
    "summarize_module",
]

SUMMARY_SCHEMA_VERSION = 3

# ---------------------------------------------------------------------------
# unit-domain vocabulary
# ---------------------------------------------------------------------------

#: name token -> unit domain
_TOKEN_DOMAINS: Dict[str, str] = {
    "db": "db",
    "dbc": "db",
    "dbv": "db",
    "dbm": "dbm",
    "hz": "hz",
    "khz": "hz",
    "mhz": "hz",
    "ghz": "hz",
    "watts": "watts",
    "milliwatts": "watts",
    "vpeak": "linear",
    "vrms": "linear",
    "vpp": "linear",
    "volts": "linear",
    "volt": "linear",
    "amplitude": "linear",
    "amplitudes": "linear",
    "ratio": "linear",
    "factor": "linear",
}

#: domain -> compatibility group; mixing across groups is flagged
DOMAIN_GROUPS: Dict[str, str] = {
    "db": "log",
    "dbm": "log",
    "linear": "lin",
    "watts": "lin",
    "hz": "freq",
}

#: repro.dsp.units converters: qualified name -> (param domain, return domain)
CONVERTER_SIGNATURES: Dict[str, Tuple[str, str]] = {
    "repro.dsp.units.db": ("linear", "db"),
    "repro.dsp.units.db20": ("linear", "db"),
    "repro.dsp.units.undb": ("db", "linear"),
    "repro.dsp.units.undb20": ("db", "linear"),
    "repro.dsp.units.watts_to_dbm": ("watts", "dbm"),
    "repro.dsp.units.dbm_to_watts": ("dbm", "watts"),
}

#: bare converter names (accepted wherever the import resolves or as attrs)
_CONVERTER_BY_NAME: Dict[str, Tuple[str, str]] = {
    qual.rsplit(".", 1)[1]: sig for qual, sig in CONVERTER_SIGNATURES.items()
}

#: docstring tag: ``lint-domains: x=db, y=hz, return=linear``
_DOMAIN_TAG_RE = re.compile(r"^\s*lint-domains:\s*(.+)$", re.MULTILINE)

#: class docstring tag: ``lint-concurrency: single-writer`` declares an
#: intentionally lock-free structure (one writer thread, readers
#: synchronized externally); the concurrency rules skip its attributes
_CONCURRENCY_TAG_RE = re.compile(r"^\s*lint-concurrency:\s*(.+)$", re.MULTILINE)

# ---------------------------------------------------------------------------
# batch-shape vocabulary
# ---------------------------------------------------------------------------

#: name tokens marking a batch-shaped (2-D / list-of-items) value
_BATCH_TOKENS = frozenset(
    {
        "devices",
        "signatures",
        "batch",
        "matrix",
        "matrices",
        "mat",
        "rows",
        "blocks",
        "chunks",
        "lot",
        "lots",
        "population",
        "genes",
        "points",
        "sigs",
        "records",
        "waveforms",
        "stimuli",
        "tasks",
        "items",
    }
)

#: name tokens marking a single-item value
_ITEM_TOKENS = frozenset(
    {
        "device",
        "signature",
        "row",
        "gene",
        "record",
        "waveform",
        "stimulus",
        "point",
        "sig",
        "item",
        "task",
        "dut",
    }
)

#: names that look like (or are conventionally) np.random.Generator objects
_RNG_NAME_RE = re.compile(r"(^|_)rng$|^rng(_|$)|(^|_)generator$")


def _tokens_of(name: str) -> Tuple[str, ...]:
    return tuple(t for t in name.lower().split("_") if t)


def domain_of_name(name: str) -> Optional[str]:
    """Unit domain implied by an identifier, or ``None`` when neutral.

    ``<src>_to_<dst>`` converter-style names classify by destination.
    A batch/plural token never changes the domain (``gains_db`` is still
    dB), and the first matching token wins scanning right to left (the
    most specific suffix names the unit: ``noise_power_watts``).
    """
    tokens = _tokens_of(name)
    if "to" in tokens:
        last_to = len(tokens) - 1 - tokens[::-1].index("to")
        tokens = tokens[last_to + 1:]
    for token in reversed(tokens):
        if token in _TOKEN_DOMAINS:
            return _TOKEN_DOMAINS[token]
    return None


def domain_group(domain: Optional[str]) -> Optional[str]:
    """Compatibility group of a domain (``log`` / ``lin`` / ``freq``)."""
    if domain is None:
        return None
    return DOMAIN_GROUPS.get(domain)


def shape_of_name(name: str) -> Optional[str]:
    """``"batch"`` / ``"item"`` classification of an identifier, if any."""
    tokens = set(_tokens_of(name))
    if tokens & _BATCH_TOKENS:
        return "batch"
    if tokens & _ITEM_TOKENS:
        return "item"
    return None


def _looks_like_rng_name(name: str) -> bool:
    return bool(_RNG_NAME_RE.search(name.lower()))


# ---------------------------------------------------------------------------
# summary dataclasses (all JSON-serializable via to_dict/from_dict)
# ---------------------------------------------------------------------------


@dataclass
class ArgSummary:
    """One argument at one call site, as locally inferred."""

    text: str = ""
    #: unit domain of the value, when locally known
    domain: Optional[str] = None
    #: qualified/raw callee whose return domain decides this arg's domain
    domain_call: Optional[str] = None
    #: "batch" / "item" shape class, when locally known
    shape: Optional[str] = None
    #: "name" / "lambda" / "localfunc" / "partial" / "other"
    kind: str = "other"
    #: resolved-as-written target of a functools.partial first argument
    partial_target: Optional[str] = None
    #: a Generator (by name or construction) is captured by / shipped in
    #: this argument
    captures_rng: bool = False

    def to_dict(self) -> Dict[str, object]:
        return {
            "text": self.text,
            "domain": self.domain,
            "domain_call": self.domain_call,
            "shape": self.shape,
            "kind": self.kind,
            "partial_target": self.partial_target,
            "captures_rng": self.captures_rng,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ArgSummary":
        return cls(**data)  # type: ignore[arg-type]


@dataclass
class CallSummary:
    """One call site inside a function body."""

    callee: str  # dotted name as written ("board.signature_batch")
    attr: str  # final name component ("signature_batch")
    line: int
    col: int
    args: List[ArgSummary] = field(default_factory=list)
    kwargs: Dict[str, ArgSummary] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "callee": self.callee,
            "attr": self.attr,
            "line": self.line,
            "col": self.col,
            "args": [a.to_dict() for a in self.args],
            "kwargs": {k: v.to_dict() for k, v in self.kwargs.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CallSummary":
        return cls(
            callee=data["callee"],  # type: ignore[arg-type]
            attr=data["attr"],  # type: ignore[arg-type]
            line=data["line"],  # type: ignore[arg-type]
            col=data["col"],  # type: ignore[arg-type]
            args=[ArgSummary.from_dict(a) for a in data.get("args", [])],
            kwargs={
                k: ArgSummary.from_dict(v)
                for k, v in data.get("kwargs", {}).items()  # type: ignore[union-attr]
            },
        )


@dataclass
class FunctionSummary:
    """Everything the project rules need to know about one function."""

    qualname: str  # "Class.method", "func", "outer.<locals>.inner"
    name: str
    line: int
    col: int
    params: List[str] = field(default_factory=list)
    #: param name -> unit domain (name heuristic, docstring tag,
    #: annotation tag, or converter-arg usage inference)
    param_domains: Dict[str, str] = field(default_factory=dict)
    #: locally inferred return domain
    return_domain: Optional[str] = None
    #: callees (as written) whose return domain determines this
    #: function's, when return_domain is None
    return_calls: List[str] = field(default_factory=list)
    calls: List[CallSummary] = field(default_factory=list)
    #: module-global mutations: (global name, line, col, how)
    global_writes: List[Tuple[str, int, int, str]] = field(default_factory=list)
    #: reads of module-level RNG names: (name, line, col)
    rng_global_reads: List[Tuple[str, int, int]] = field(default_factory=list)
    is_method: bool = False
    is_nested: bool = False

    def to_dict(self) -> Dict[str, object]:
        return {
            "qualname": self.qualname,
            "name": self.name,
            "line": self.line,
            "col": self.col,
            "params": list(self.params),
            "param_domains": dict(self.param_domains),
            "return_domain": self.return_domain,
            "return_calls": list(self.return_calls),
            "calls": [c.to_dict() for c in self.calls],
            "global_writes": [list(w) for w in self.global_writes],
            "rng_global_reads": [list(r) for r in self.rng_global_reads],
            "is_method": self.is_method,
            "is_nested": self.is_nested,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FunctionSummary":
        return cls(
            qualname=data["qualname"],  # type: ignore[arg-type]
            name=data["name"],  # type: ignore[arg-type]
            line=data["line"],  # type: ignore[arg-type]
            col=data["col"],  # type: ignore[arg-type]
            params=list(data.get("params", [])),  # type: ignore[arg-type]
            param_domains=dict(data.get("param_domains", {})),  # type: ignore[arg-type]
            return_domain=data.get("return_domain"),  # type: ignore[arg-type]
            return_calls=list(data.get("return_calls", [])),  # type: ignore[arg-type]
            calls=[CallSummary.from_dict(c) for c in data.get("calls", [])],
            global_writes=[tuple(w) for w in data.get("global_writes", [])],
            rng_global_reads=[tuple(r) for r in data.get("rng_global_reads", [])],
            is_method=bool(data.get("is_method", False)),
            is_nested=bool(data.get("is_nested", False)),
        )


@dataclass
class ClassSummary:
    """A class and the constructor surface callers see."""

    name: str
    line: int
    #: __init__ params (without self) or dataclass field names, in order
    init_params: List[str] = field(default_factory=list)
    param_domains: Dict[str, str] = field(default_factory=dict)
    methods: List[str] = field(default_factory=list)
    #: base classes as written ("threading.Thread", "Base")
    bases: List[str] = field(default_factory=list)
    #: instance attribute -> constructor expression as written, from
    #: ``self.attr = Ctor(...)`` assignments in the class's methods
    attr_types: Dict[str, str] = field(default_factory=dict)
    #: class opted out of lockset checking via the
    #: ``lint-concurrency: single-writer`` docstring tag
    single_writer: bool = False
    #: attributes the tag names (``single-writer a b``); empty means the
    #: whole class is exempt when :attr:`single_writer` is set
    single_writer_attrs: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "line": self.line,
            "init_params": list(self.init_params),
            "param_domains": dict(self.param_domains),
            "methods": list(self.methods),
            "bases": list(self.bases),
            "attr_types": dict(self.attr_types),
            "single_writer": self.single_writer,
            "single_writer_attrs": list(self.single_writer_attrs),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ClassSummary":
        return cls(
            name=data["name"],  # type: ignore[arg-type]
            line=data["line"],  # type: ignore[arg-type]
            init_params=list(data.get("init_params", [])),  # type: ignore[arg-type]
            param_domains=dict(data.get("param_domains", {})),  # type: ignore[arg-type]
            methods=list(data.get("methods", [])),  # type: ignore[arg-type]
            bases=list(data.get("bases", [])),  # type: ignore[arg-type]
            attr_types=dict(data.get("attr_types", {})),  # type: ignore[arg-type]
            single_writer=bool(data.get("single_writer", False)),
            single_writer_attrs=list(data.get("single_writer_attrs", [])),  # type: ignore[arg-type]
        )


@dataclass
class ModuleSummary:
    """The cacheable cross-module view of one file."""

    path: str
    #: dotted module name ("repro.dsp.units") or None outside the package
    module: Optional[str]
    is_test: bool
    #: local binding -> fully dotted target ("np" -> "numpy",
    #: "undb" -> "repro.dsp.units.undb")
    imports: Dict[str, str] = field(default_factory=dict)
    module_level_names: List[str] = field(default_factory=list)
    #: module-level names bound to RNG constructor calls
    module_rng_names: List[str] = field(default_factory=list)
    functions: List[FunctionSummary] = field(default_factory=list)
    classes: List[ClassSummary] = field(default_factory=list)
    #: line -> suppressed rule names (copied so cached project findings
    #: can be filtered without re-reading the file)
    suppressions: Dict[int, List[str]] = field(default_factory=dict)
    #: numeric IR for the absint pass (a ``ModuleNumerics.to_dict()``
    #: payload, kept as a plain dict so it round-trips the cache as-is)
    numerics: Optional[Dict[str, object]] = None
    #: concurrency IR for the lockset/lock-order pass (a
    #: ``ModuleConcurrency.to_dict()`` payload, same bargain)
    concurrency: Optional[Dict[str, object]] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": SUMMARY_SCHEMA_VERSION,
            "path": self.path,
            "module": self.module,
            "is_test": self.is_test,
            "imports": dict(self.imports),
            "module_level_names": list(self.module_level_names),
            "module_rng_names": list(self.module_rng_names),
            "functions": [f.to_dict() for f in self.functions],
            "classes": [c.to_dict() for c in self.classes],
            "suppressions": {
                str(line): sorted(names) for line, names in self.suppressions.items()
            },
            "numerics": self.numerics,
            "concurrency": self.concurrency,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ModuleSummary":
        return cls(
            path=data["path"],  # type: ignore[arg-type]
            module=data.get("module"),  # type: ignore[arg-type]
            is_test=bool(data.get("is_test", False)),
            imports=dict(data.get("imports", {})),  # type: ignore[arg-type]
            module_level_names=list(data.get("module_level_names", [])),  # type: ignore[arg-type]
            module_rng_names=list(data.get("module_rng_names", [])),  # type: ignore[arg-type]
            functions=[
                FunctionSummary.from_dict(f) for f in data.get("functions", [])
            ],
            classes=[ClassSummary.from_dict(c) for c in data.get("classes", [])],
            suppressions={
                int(line): set(names)
                for line, names in data.get("suppressions", {}).items()  # type: ignore[union-attr]
            },
            numerics=data.get("numerics"),  # type: ignore[arg-type]
            concurrency=data.get("concurrency"),  # type: ignore[arg-type]
        )

    def is_suppressed(self, line: int, rule: str) -> bool:
        names = self.suppressions.get(line)
        if not names:
            return False
        return "*" in names or rule in names


# ---------------------------------------------------------------------------
# extraction helpers
# ---------------------------------------------------------------------------


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _module_name_for_path(path: str) -> Optional[str]:
    """Dotted module name for a file under the ``repro`` package root."""
    parts = os.path.normpath(os.path.abspath(path)).split(os.sep)
    if "repro" not in parts:
        return None
    anchor = len(parts) - 1 - parts[::-1].index("repro")
    rel = parts[anchor:]
    if not rel[-1].endswith(".py"):
        return None
    rel[-1] = rel[-1][:-3]
    if rel[-1] == "__init__":
        rel = rel[:-1]
    return ".".join(rel)


def _docstring_domain_tags(doc: Optional[str]) -> Dict[str, str]:
    """Parse ``lint-domains: x=db, return=linear`` tags from a docstring."""
    tags: Dict[str, str] = {}
    if not doc:
        return tags
    for match in _DOMAIN_TAG_RE.finditer(doc):
        for part in match.group(1).split(","):
            name, _, domain = part.partition("=")
            name, domain = name.strip(), domain.strip()
            if name and domain in DOMAIN_GROUPS:
                tags[name] = domain
    return tags


def _annotation_domain(annotation: Optional[ast.expr]) -> Optional[str]:
    """A string-literal annotation naming a domain (``x: "db"``)."""
    if (
        isinstance(annotation, ast.Constant)
        and isinstance(annotation.value, str)
        and annotation.value in DOMAIN_GROUPS
    ):
        return annotation.value
    return None


def _is_rng_constructor(call: ast.Call) -> bool:
    name = _dotted_name(call.func)
    if name is None:
        return False
    leaf = name.split(".")[-1]
    return leaf in ("default_rng", "RandomState", "Generator", "spawn_generators")


_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "clear",
        "remove",
        "insert",
        "discard",
    }
)


class _LocalNames(ast.NodeVisitor):
    """Collect names a function binds locally (params, assigns, loops)."""

    def __init__(self) -> None:
        self.names: Set[str] = set()

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            self.names.add(node.id)
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.names.add(node.name)  # nested def binds its name locally

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.names.add(node.name)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass  # lambda params are not enclosing-scope locals


def _function_args(func: ast.AST) -> List[ast.arg]:
    args = func.args
    return [*args.posonlyargs, *args.args, *args.kwonlyargs]


class _Env:
    """Per-function flow-insensitive value facts: domain / shape / rng."""

    def __init__(self) -> None:
        self.domain: Dict[str, str] = {}
        self.shape: Dict[str, str] = {}
        self.rng: Set[str] = set()
        #: names bound to `slice(...)` values; indexing with one keeps
        #: the base's batch shape (``xs[val]`` where ``val = slice(...)``)
        self.slices: Set[str] = set()
        #: names whose domain is the (unresolved) return domain of a call
        #: (``value = helper(x)``); resolved later against the index
        self.symbolic: Dict[str, str] = {}

    def domain_of(self, name: str) -> Optional[str]:
        return self.domain.get(name, domain_of_name(name))

    def shape_of(self, name: str) -> Optional[str]:
        return self.shape.get(name, shape_of_name(name))

    def is_rng(self, name: str) -> bool:
        return name in self.rng or _looks_like_rng_name(name)


def _infer_domain(node: ast.expr, env: _Env) -> Tuple[Optional[str], Optional[str]]:
    """(domain, symbolic-callee) of an expression under ``env``.

    The symbolic callee is returned when the domain is exactly the
    return domain of a project function the index resolves later.
    """
    if isinstance(node, ast.Name):
        domain = env.domain_of(node.id)
        if domain is not None:
            return domain, None
        return None, env.symbolic.get(node.id)
    if isinstance(node, ast.Attribute):
        return domain_of_name(node.attr), None
    if isinstance(node, ast.Subscript):
        return _infer_domain(node.value, env)
    if isinstance(node, ast.UnaryOp):
        return _infer_domain(node.operand, env)
    if isinstance(node, ast.Call):
        callee = _dotted_name(node.func)
        if callee is not None:
            leaf = callee.split(".")[-1]
            if leaf in _CONVERTER_BY_NAME:
                return _CONVERTER_BY_NAME[leaf][1], None
            named = domain_of_name(leaf)
            if named is not None:
                return named, None
            return None, callee
        return None, None
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.Add, ast.Sub, ast.Mult, ast.Div)
    ):
        left, _ = _infer_domain(node.left, env)
        right, _ = _infer_domain(node.right, env)
        known = [d for d in (left, right) if d is not None]
        if len(known) == 1:
            return known[0], None
        if len(known) == 2 and known[0] == known[1]:
            return known[0], None
        return None, None
    return None, None


def _infer_shape(node: ast.expr, env: _Env) -> Optional[str]:
    """Best-effort batch/item shape class of an expression."""
    if isinstance(node, ast.Name):
        return env.shape_of(node.id)
    if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.List, ast.Tuple)):
        return "batch"
    if isinstance(node, ast.Subscript):
        base = _infer_shape(node.value, env)
        if isinstance(node.slice, ast.Slice):
            return base
        if isinstance(node.slice, ast.Name) and node.slice.id in env.slices:
            return base
        if base == "batch":
            return "item"
        return None
    if isinstance(node, ast.Attribute):
        return shape_of_name(node.attr)
    if isinstance(node, ast.Call):
        callee = _dotted_name(node.func)
        if callee is None:
            return None
        leaf = callee.split(".")[-1]
        if leaf.endswith(("_batch", "_matrix")) or leaf in (
            "vstack",
            "column_stack",
            "atleast_2d",
        ):
            return "batch"
        return None
    return None


def _is_rng_expr(node: ast.expr, env: _Env) -> bool:
    if isinstance(node, ast.Name):
        return env.is_rng(node.id)
    if isinstance(node, ast.Call):
        return _is_rng_constructor(node)
    if isinstance(node, ast.Attribute):
        return _looks_like_rng_name(node.attr)
    return False


def _free_rng_capture(func: ast.AST, env: _Env) -> bool:
    """Does a lambda / nested def read an enclosing-scope RNG name?"""
    collector = _LocalNames()
    if isinstance(func, ast.Lambda):
        own = {a.arg for a in _function_args(func)}
        body: Iterable[ast.AST] = [func.body]
    else:
        own = {a.arg for a in _function_args(func)}
        body = func.body
    for stmt in body:
        collector.visit(stmt)
    own |= collector.names
    for stmt in body:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id not in own
                and env.is_rng(node.id)
            ):
                return True
    return False


def _arg_summary(
    node: ast.expr, env: _Env, local_defs: Dict[str, ast.AST]
) -> ArgSummary:
    text = ""
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        pass
    if len(text) > 60:
        text = text[:57] + "..."
    domain, domain_call = _infer_domain(node, env)
    shape = _infer_shape(node, env)
    kind = "other"
    partial_target: Optional[str] = None
    captures_rng = False
    if isinstance(node, ast.Lambda):
        kind = "lambda"
        captures_rng = _free_rng_capture(node, env)
    elif isinstance(node, ast.Name):
        if node.id in local_defs:
            kind = "localfunc"
            captures_rng = _free_rng_capture(local_defs[node.id], env)
        else:
            kind = "name"
            captures_rng = env.is_rng(node.id)
    elif isinstance(node, ast.Call):
        callee = _dotted_name(node.func)
        if callee is not None and callee.split(".")[-1] == "partial":
            kind = "partial"
            if node.args:
                partial_target = _dotted_name(node.args[0])
                if partial_target in local_defs:
                    kind = "partial-local"
            captures_rng = any(
                _is_rng_expr(a, env)
                for a in [*node.args[1:], *[kw.value for kw in node.keywords]]
            )
    elif isinstance(node, ast.Attribute):
        kind = "name"
        captures_rng = _looks_like_rng_name(node.attr)
    return ArgSummary(
        text=text,
        domain=domain,
        domain_call=domain_call,
        shape=shape,
        kind=kind,
        partial_target=partial_target,
        captures_rng=captures_rng,
    )


def _summarize_function(
    func: ast.AST,
    qualname: str,
    module_level_names: Set[str],
    module_rng_names: Set[str],
    is_method: bool,
    is_nested: bool,
    out: List[FunctionSummary],
) -> FunctionSummary:
    """Summarize one function; nested defs recurse and append to ``out``."""
    params = [a.arg for a in _function_args(func)]
    doc_tags = _docstring_domain_tags(ast.get_docstring(func, clean=False))

    param_domains: Dict[str, str] = {}
    for arg in _function_args(func):
        domain = (
            doc_tags.get(arg.arg)
            or _annotation_domain(arg.annotation)
            or domain_of_name(arg.arg)
        )
        if domain is not None:
            param_domains[arg.arg] = domain

    env = _Env()
    for name, domain in param_domains.items():
        env.domain[name] = domain
    for name in params:
        shape = shape_of_name(name)
        if shape is not None:
            env.shape[name] = shape
        if _looks_like_rng_name(name):
            env.rng.add(name)

    local_defs: Dict[str, ast.AST] = {}
    body = list(func.body)

    # ---- pass 1: scope facts (locals, assignments, converter-arg usage)
    locals_collector = _LocalNames()
    for stmt in body:
        locals_collector.visit(stmt)
    local_names = set(params) | locals_collector.names

    def _note_assign(target: ast.expr, value: ast.expr) -> None:
        if not isinstance(target, ast.Name):
            return
        domain, domain_call = _infer_domain(value, env)
        if domain is not None:
            env.domain[target.id] = domain
        elif domain_call is not None:
            env.symbolic[target.id] = domain_call
        shape = _infer_shape(value, env)
        if shape is not None:
            env.shape[target.id] = shape
        if _is_rng_expr(value, env):
            env.rng.add(target.id)
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "slice"
        ):
            env.slices.add(target.id)

    def _walk_no_nested(node: ast.AST) -> Iterable[ast.AST]:
        """Walk a statement without descending into nested function defs."""
        stack = [node]
        while stack:
            current = stack.pop()
            yield current
            for child in ast.iter_child_nodes(current):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                stack.append(child)

    for stmt in body:
        for node in _walk_no_nested(stmt):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                local_defs[node.name] = node
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    _note_assign(target, node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                _note_assign(node.target, node.value)

    # converter-arg inference: undb(x) pins x to the converter's domain
    for stmt in body:
        for node in _walk_no_nested(stmt):
            if not isinstance(node, ast.Call) or len(node.args) != 1:
                continue
            callee = _dotted_name(node.func)
            if callee is None:
                continue
            sig = _CONVERTER_BY_NAME.get(callee.split(".")[-1])
            arg = node.args[0]
            if (
                sig is not None
                and isinstance(arg, ast.Name)
                and arg.id in params
                and arg.id not in param_domains
            ):
                param_domains[arg.id] = sig[0]
                env.domain[arg.id] = sig[0]

    # ---- pass 2: calls, returns, global writes
    calls: List[CallSummary] = []
    return_domains: Set[Optional[str]] = set()
    return_calls: List[str] = []
    global_names: Set[str] = set()
    global_writes: List[Tuple[str, int, int, str]] = []
    rng_global_reads: List[Tuple[str, int, int]] = []

    def _root_name(node: ast.expr) -> Optional[str]:
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        if isinstance(node, ast.Name):
            return node.id
        return None

    for stmt in body:
        for node in _walk_no_nested(stmt):
            if isinstance(node, ast.Global):
                global_names.update(node.names)
            elif isinstance(node, ast.Call):
                callee = _dotted_name(node.func)
                if callee is None:
                    continue
                attr = callee.split(".")[-1]
                calls.append(
                    CallSummary(
                        callee=callee,
                        attr=attr,
                        line=node.lineno,
                        col=node.col_offset + 1,
                        args=[
                            _arg_summary(a, env, local_defs)
                            for a in node.args
                            if not isinstance(a, ast.Starred)
                        ],
                        kwargs={
                            kw.arg: _arg_summary(kw.value, env, local_defs)
                            for kw in node.keywords
                            if kw.arg is not None
                        },
                    )
                )
                # mutator-method call on a module-level object
                if attr in _MUTATOR_METHODS and isinstance(
                    node.func, ast.Attribute
                ):
                    root = _root_name(node.func.value)
                    if (
                        root is not None
                        and root in module_level_names
                        and root not in local_names
                    ):
                        global_writes.append(
                            (root, node.lineno, node.col_offset + 1, f".{attr}()")
                        )
            elif isinstance(node, ast.Return) and node.value is not None:
                domain, domain_call = _infer_domain(node.value, env)
                return_domains.add(domain)
                if domain is None and domain_call is not None:
                    return_calls.append(domain_call)
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name) and target.id in global_names:
                        global_writes.append(
                            (target.id, node.lineno, node.col_offset + 1, "global")
                        )
                    elif isinstance(target, (ast.Subscript, ast.Attribute)):
                        root = _root_name(target)
                        if (
                            root is not None
                            and root in module_level_names
                            and root not in local_names
                        ):
                            how = (
                                "subscript"
                                if isinstance(target, ast.Subscript)
                                else "attribute"
                            )
                            global_writes.append(
                                (root, node.lineno, node.col_offset + 1, how)
                            )
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                if node.id in module_rng_names and node.id not in local_names:
                    rng_global_reads.append(
                        (node.id, node.lineno, node.col_offset + 1)
                    )

    known_returns = {d for d in return_domains if d is not None}
    return_domain = known_returns.pop() if len(known_returns) == 1 else None
    if None in return_domains and return_domain is not None and return_calls:
        # mixed symbolic/known returns: leave resolution to the fixpoint
        return_domain = None

    summary = FunctionSummary(
        qualname=qualname,
        name=func.name,
        line=func.lineno,
        col=func.col_offset + 1,
        params=params,
        param_domains=param_domains,
        return_domain=return_domain,
        return_calls=sorted(set(return_calls)),
        calls=calls,
        global_writes=global_writes,
        rng_global_reads=rng_global_reads,
        is_method=is_method,
        is_nested=is_nested,
    )
    out.append(summary)

    for name, nested in local_defs.items():
        _summarize_function(
            nested,
            f"{qualname}.<locals>.{name}",
            module_level_names,
            module_rng_names,
            is_method=False,
            is_nested=True,
            out=out,
        )
    return summary


def _class_attr_types(node: ast.ClassDef) -> Dict[str, str]:
    """``self.attr = Ctor(...)`` constructor expressions, ``__init__`` first."""
    attr_types: Dict[str, str] = {}
    methods = [
        item
        for item in node.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    methods.sort(key=lambda m: m.name != "__init__")
    for method in methods:
        for sub in ast.walk(method):
            if not isinstance(sub, ast.Assign) or not isinstance(
                sub.value, ast.Call
            ):
                continue
            ctor = _dotted_name(sub.value.func)
            if ctor is None:
                continue
            for target in sub.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    attr_types.setdefault(target.attr, ctor)
    return attr_types


def _single_writer_attrs(doc: Optional[str]) -> Optional[List[str]]:
    """Parse a class docstring's ``lint-concurrency: single-writer`` tag.

    Returns ``None`` when untagged, ``[]`` for a bare tag (the whole
    class is exempt from lockset checking) and the attribute names for
    the scoped form ``lint-concurrency: single-writer attr1 attr2``.
    """
    if not doc:
        return None
    for match in _CONCURRENCY_TAG_RE.finditer(doc):
        for part in match.group(1).split(","):
            words = part.split()
            if words and words[0] == "single-writer":
                return words[1:]
    return None


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = _dotted_name(target)
        if name is not None and name.split(".")[-1] == "dataclass":
            return True
    return False


def summarize_module(module: ModuleSource) -> ModuleSummary:
    """Compress one parsed file into its cacheable cross-module summary."""
    tree = module.tree
    module_name = _module_name_for_path(module.path)

    imports: Dict[str, str] = {}
    module_level_names: List[str] = []
    module_rng_names: List[str] = []

    for stmt in tree.body:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                if alias.asname:
                    imports[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    imports[head] = head
        elif isinstance(stmt, ast.ImportFrom):
            base = stmt.module or ""
            if stmt.level and module_name is not None:
                parts = module_name.split(".")
                # level 1 = current package (strip the module leaf)
                parent = parts[: len(parts) - stmt.level]
                base = ".".join(parent + ([base] if base else []))
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{base}.{alias.name}" if base else alias.name
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    module_level_names.append(target.id)
                    value = stmt.value
                    if value is not None and any(
                        isinstance(n, ast.Call) and _is_rng_constructor(n)
                        for n in ast.walk(value)
                    ):
                        module_rng_names.append(target.id)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            module_level_names.append(stmt.name)

    functions: List[FunctionSummary] = []
    classes: List[ClassSummary] = []
    level_names = set(module_level_names)
    rng_names = set(module_rng_names)

    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _summarize_function(
                stmt, stmt.name, level_names, rng_names, False, False, functions
            )
        elif isinstance(stmt, ast.ClassDef):
            methods: List[str] = []
            init_params: List[str] = []
            param_domains: Dict[str, str] = {}
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods.append(item.name)
                    summary = _summarize_function(
                        item,
                        f"{stmt.name}.{item.name}",
                        level_names,
                        rng_names,
                        True,
                        False,
                        functions,
                    )
                    if item.name == "__init__":
                        init_params = summary.params[1:]
                        param_domains = {
                            k: v
                            for k, v in summary.param_domains.items()
                            if k in init_params
                        }
            if not init_params and _is_dataclass_decorated(stmt):
                for item in stmt.body:
                    if isinstance(item, ast.AnnAssign) and isinstance(
                        item.target, ast.Name
                    ):
                        init_params.append(item.target.id)
                        domain = _annotation_domain(
                            item.annotation
                        ) or domain_of_name(item.target.id)
                        if domain is not None:
                            param_domains[item.target.id] = domain
            sw_attrs = _single_writer_attrs(
                ast.get_docstring(stmt, clean=False)
            )
            classes.append(
                ClassSummary(
                    name=stmt.name,
                    line=stmt.lineno,
                    init_params=init_params,
                    param_domains=param_domains,
                    methods=methods,
                    bases=[
                        base
                        for base in map(_dotted_name, stmt.bases)
                        if base is not None
                    ],
                    attr_types=_class_attr_types(stmt),
                    single_writer=sw_attrs is not None,
                    single_writer_attrs=sw_attrs or [],
                )
            )

    # imported late: absint's interpreter itself builds on this module
    from repro.analysis.absint.extract import extract_numerics
    from repro.analysis.concurrency.extract import extract_concurrency

    return ModuleSummary(
        path=module.path,
        module=module_name,
        is_test=module.is_test,
        imports=imports,
        module_level_names=module_level_names,
        module_rng_names=module_rng_names,
        functions=functions,
        classes=classes,
        suppressions={k: set(v) for k, v in module.suppressions.items()},
        numerics=extract_numerics(tree).to_dict(),
        concurrency=extract_concurrency(tree).to_dict(),
    )


# ---------------------------------------------------------------------------
# the project index
# ---------------------------------------------------------------------------


class ProjectRule(Rule):
    """A rule that runs over the whole :class:`ProjectIndex` at once.

    Project rules implement :meth:`check_project`; the per-file
    :meth:`check` is a no-op so the single-file walkers skip them
    silently.  Findings are filtered against each target module's
    suppressions and (for ``library_only`` rules) its test flag by the
    driver.
    """

    def check(self, module: ModuleSource):  # pragma: no cover - by design
        return iter(())

    def check_project(self, index: "ProjectIndex"):
        raise NotImplementedError


class ProjectIndex:
    """Summaries resolved against each other: symbols, edges, reachability."""

    def __init__(self, summaries: Sequence[ModuleSummary]):
        self.summaries: List[ModuleSummary] = list(summaries)
        self.by_path: Dict[str, ModuleSummary] = {s.path: s for s in self.summaries}
        #: fully qualified function name -> (module summary, function summary)
        self.functions: Dict[str, Tuple[ModuleSummary, FunctionSummary]] = {}
        #: fully qualified class name -> (module summary, class summary)
        self.classes: Dict[str, Tuple[ModuleSummary, ClassSummary]] = {}
        #: bare function/method name -> [qualified names]
        self._by_name: Dict[str, List[str]] = {}
        for summary in self.summaries:
            prefix = summary.module or summary.path
            for func in summary.functions:
                qual = f"{prefix}.{func.qualname}"
                self.functions[qual] = (summary, func)
                self._by_name.setdefault(func.name, []).append(qual)
            for cls in summary.classes:
                self.classes[f"{prefix}.{cls.name}"] = (summary, cls)
        self._return_domains: Optional[Dict[str, str]] = None

    @classmethod
    def from_sources(
        cls, sources: Dict[str, str], is_test: bool = False
    ) -> "ProjectIndex":
        """Build an index straight from ``{path: source}`` (for tests)."""
        summaries = []
        for path, source in sources.items():
            module = ModuleSource.from_source(source, path, is_test=is_test)
            summaries.append(summarize_module(module))
        return cls(summaries)

    # -- name resolution ---------------------------------------------------

    def resolve_callee(
        self,
        summary: ModuleSummary,
        call: CallSummary,
        *,
        unique_attr: bool = True,
    ) -> Optional[str]:
        """Fully qualified target of a call site, or None when ambiguous.

        ``unique_attr=False`` disables the last-resort unique-method-name
        fallback; pass it when a wrong guess is costlier than a missed
        edge (e.g. ``x.get(...)`` resolving to the project's sole ``get``
        method even though the receiver is a plain dict).
        """
        parts = call.callee.split(".")
        head = parts[0]
        prefix = summary.module or summary.path

        # import-resolved dotted path ("units.undb", "undb", "np.log10")
        if head in summary.imports:
            target = ".".join([summary.imports[head], *parts[1:]])
            if target in self.functions or target in self.classes:
                return target
            # "from repro.runtime import executor; executor.map_tasks" style
            if target in CONVERTER_SIGNATURES:
                return target
            if not unique_attr:
                return None
            return self._unique_by_attr(call.attr, summary)

        # bare local name: module-level function / class in this module
        if len(parts) == 1:
            local = f"{prefix}.{head}"
            if local in self.functions or local in self.classes:
                return local
            return None

        # self.obj.method: resolve through the constructor that typed
        # ``self.obj`` in this module's classes ("self._throughput.record")
        if head == "self" and len(parts) == 3:
            for cls_summary in summary.classes:
                ctor = cls_summary.attr_types.get(parts[1])
                if ctor is None:
                    continue
                target = self.resolve_constructor(summary, ctor)
                if target is not None:
                    _, target_cls = self.classes[target]
                    if call.attr in target_cls.methods:
                        return f"{target}.{call.attr}"

        # self.method: prefer a method of a class in this module
        if head == "self":
            for cls_summary in summary.classes:
                if call.attr in cls_summary.methods:
                    return f"{prefix}.{cls_summary.name}.{call.attr}"
            if not unique_attr:
                return None
            return self._unique_by_attr(call.attr, summary)

        # obj.method on an unresolvable receiver: unique-name match only
        if not unique_attr:
            return None
        return self._unique_by_attr(call.attr, summary)

    def resolve_constructor(
        self, summary: ModuleSummary, ctor: str
    ) -> Optional[str]:
        """Qualified project class named by a constructor expression."""
        parts = ctor.split(".")
        head = parts[0]
        prefix = summary.module or summary.path
        if head in summary.imports:
            target = ".".join([summary.imports[head], *parts[1:]])
        elif len(parts) == 1:
            target = f"{prefix}.{ctor}"
        else:
            target = ctor
        return target if target in self.classes else None

    def _unique_by_attr(
        self, attr: str, summary: ModuleSummary
    ) -> Optional[str]:
        candidates = self._by_name.get(attr, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def converter_signature(
        self, summary: ModuleSummary, call: CallSummary
    ) -> Optional[Tuple[str, str]]:
        """(param domain, return domain) when the call is a units converter."""
        resolved = self.resolve_callee(summary, call)
        if resolved in CONVERTER_SIGNATURES:
            return CONVERTER_SIGNATURES[resolved]
        return None

    # -- interprocedural return domains ------------------------------------

    def return_domains(self) -> Dict[str, str]:
        """Fixpoint of every function's return domain across call edges."""
        if self._return_domains is not None:
            return self._return_domains
        domains: Dict[str, str] = {}
        for qual, (_, func) in self.functions.items():
            if func.return_domain is not None:
                domains[qual] = func.return_domain
        for _ in range(10):
            changed = False
            for qual, (summary, func) in self.functions.items():
                if qual in domains or not func.return_calls:
                    continue
                resolved_domains: Set[str] = set()
                for callee in func.return_calls:
                    target = self.resolve_callee(
                        summary, CallSummary(callee, callee.split(".")[-1], 0, 0)
                    )
                    if target in CONVERTER_SIGNATURES:
                        resolved_domains.add(CONVERTER_SIGNATURES[target][1])
                    elif target in domains:
                        resolved_domains.add(domains[target])
                    else:
                        resolved_domains.add("?")
                if len(resolved_domains) == 1 and "?" not in resolved_domains:
                    domains[qual] = resolved_domains.pop()
                    changed = True
            if not changed:
                break
        self._return_domains = domains
        return domains

    def arg_domain(
        self, summary: ModuleSummary, arg: ArgSummary
    ) -> Optional[str]:
        """Argument domain, resolving symbolic callee refs if needed."""
        if arg.domain is not None:
            return arg.domain
        if arg.domain_call is not None:
            call = CallSummary(
                arg.domain_call, arg.domain_call.split(".")[-1], 0, 0
            )
            target = self.resolve_callee(summary, call)
            if target in CONVERTER_SIGNATURES:
                return CONVERTER_SIGNATURES[target][1]
            if target is not None:
                return self.return_domains().get(target)
        return None

    # -- call graph --------------------------------------------------------

    def call_edges(self) -> Dict[str, Set[str]]:
        """Resolved call graph: qualified caller -> set of qualified callees."""
        edges: Dict[str, Set[str]] = {}
        for qual, (summary, func) in self.functions.items():
            targets: Set[str] = set()
            for call in func.calls:
                resolved = self.resolve_callee(summary, call)
                if resolved is not None and resolved in self.functions:
                    targets.add(resolved)
                elif resolved is not None and resolved in self.classes:
                    init = f"{resolved}.__init__"
                    if init in self.functions:
                        targets.add(init)
            edges[qual] = targets
        return edges

    def reachable_from(self, roots: Iterable[str]) -> Set[str]:
        """Qualified functions reachable from ``roots`` via resolved edges."""
        edges = self.call_edges()
        seen: Set[str] = set()
        stack = [r for r in roots if r in self.functions]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(edges.get(current, ()) - seen)
        return seen
