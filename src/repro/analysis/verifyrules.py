"""Verification-harness rule: metamorphic relations must be seed-pure.

The verify harness (:mod:`repro.verify`) derives every test case from a
master seed -- ``SeedSequence(master_seed, relation, index)`` -- so a
campaign is replayable and a shrunk counterexample re-fails forever.
That guarantee dies the moment a relation body draws from RNG state the
harness does not control.  ``verify-relation-seeded`` inspects every
function decorated with ``@relation(...)`` and enforces the contract:

* the relation must accept an explicit ``rng``/``seed`` parameter (the
  harness passes a per-case ``np.random.Generator``);
* the body must never draw from global RNG state: no legacy
  ``np.random.<draw>`` calls, no stdlib ``random.<draw>`` calls, and no
  unseeded ``np.random.default_rng()`` (a *seeded* ``default_rng(x)``
  derived from case data is fine -- that is how sub-streams are made).
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.determinism import (
    ALLOWED_NP_RANDOM_ATTRS,
    _attr_chain,
    _is_np_random_chain,
    _rng_callee_name,
)
from repro.analysis.engine import Finding, ModuleSource, Rule

__all__ = ["RelationSeededRule", "VERIFY_RULES"]

#: Parameter names that satisfy the explicit-seed requirement.
RNG_PARAM_NAMES = frozenset({"rng", "seed", "master_seed", "seed_sequence"})

#: Global-state drawing functions of the stdlib ``random`` module.
#: ``random.Random(seed)`` is deliberately absent: a locally constructed,
#: seeded instance is explicit state, not global state.
STDLIB_RANDOM_DRAWS = frozenset(
    {
        "seed",
        "random",
        "uniform",
        "randint",
        "randrange",
        "choice",
        "choices",
        "sample",
        "shuffle",
        "gauss",
        "normalvariate",
        "betavariate",
        "expovariate",
        "triangular",
        "getrandbits",
        "randbytes",
    }
)


def _is_relation_decorator(dec: ast.AST) -> bool:
    """Is this decorator ``@relation(...)`` (bare or attribute-qualified)?"""
    target = dec.func if isinstance(dec, ast.Call) else dec
    if isinstance(target, ast.Name):
        return target.id == "relation"
    if isinstance(target, ast.Attribute):
        return target.attr == "relation"
    return False


def _param_names(node: ast.FunctionDef) -> List[str]:
    args = node.args
    return [a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)]


def _has_rng_param(node: ast.FunctionDef) -> bool:
    return any(
        name in RNG_PARAM_NAMES or name.endswith("_rng")
        for name in _param_names(node)
    )


class RelationSeededRule(Rule):
    name = "verify-relation-seeded"
    description = (
        "@relation functions must take an explicit rng/seed parameter "
        "and never draw from global or unseeded RNG state"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not any(
                _is_relation_decorator(dec) for dec in node.decorator_list
            ):
                continue
            if not _has_rng_param(node):
                yield self.finding(
                    module,
                    node,
                    f"relation `{node.name}` has no explicit rng/seed "
                    "parameter; the harness hands every case a seeded "
                    "np.random.Generator -- accept it (e.g. `def "
                    f"{node.name}(case, rng)`) so the case is replayable",
                )
            yield from self._check_body(module, node)

    def _check_body(
        self, module: ModuleSource, fn: ast.FunctionDef
    ) -> Iterator[Finding]:
        # Walk only the body: decorators hold Param declarations, not code.
        for stmt in fn.body:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Call):
                    if (
                        _rng_callee_name(sub) == "default_rng"
                        and not sub.args
                        and not sub.keywords
                    ):
                        yield self.finding(
                            module,
                            sub,
                            f"relation `{fn.name}` constructs an unseeded "
                            "default_rng(); use the harness-provided rng "
                            "(or a generator seeded from case data)",
                        )
                        continue
                    chain = _attr_chain(sub.func)
                    if (
                        chain is not None
                        and chain.split(".")[0] == "random"
                        and chain.split(".")[-1] in STDLIB_RANDOM_DRAWS
                    ):
                        yield self.finding(
                            module,
                            sub,
                            f"relation `{fn.name}` draws from the stdlib "
                            f"global RNG (`{chain}`); use the "
                            "harness-provided np.random.Generator",
                        )
                elif isinstance(sub, ast.Attribute):
                    chain = _attr_chain(sub)
                    if (
                        _is_np_random_chain(chain)
                        and chain.split(".")[-1] not in ALLOWED_NP_RANDOM_ATTRS
                    ):
                        yield self.finding(
                            module,
                            sub,
                            f"relation `{fn.name}` touches the global numpy "
                            f"RNG (`{chain}`); use the harness-provided rng",
                        )


VERIFY_RULES = (RelationSeededRule(),)
