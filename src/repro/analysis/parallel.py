"""Parallel-safety rules for executor-dispatched task graphs.

``repro.parallel``'s determinism contract (docs/parallelism.md) says
tasks must be pure, picklable, and draw randomness only from per-task
streams spawned with ``SeedSequence.spawn``.  Nothing enforced that
contract until now: a lambda handed to ``map_tasks`` works on the
serial/thread backends and only explodes (or silently degrades to
serial) under ``ProcessExecutor``; a closure-captured ``Generator``
produces *different* results per backend and worker count -- the
irreproducibility failure mode the redundant-measurement literature
(PAPERS.md) exists to catch; a task mutating module globals races under
threads and silently diverges per process.

Three rules run over the project call graph, rooted at every
``map_tasks`` dispatch site (the task callable argument, unwrapped
through ``functools.partial``):

* ``par-unpicklable-task`` -- the dispatched callable is a lambda or a
  function defined inside another function: unpicklable, so the process
  backend can never run it.
* ``par-captured-rng`` -- the dispatched callable closes over an RNG
  from the enclosing scope, an RNG is baked into its ``partial``, or a
  function reachable from it reads a module-level RNG.  One shared
  stream across tasks breaks the bit-identical-on-every-backend
  guarantee; spawn per-task streams with
  :func:`repro.runtime.executor.spawn_seeds` and ship *seeds* in the
  item list instead.
* ``par-global-mutation`` -- a function reachable from a dispatch site
  writes module-level state (``global`` assignment, or
  subscript/attribute/mutator-method writes on a module-level object).
  Worker processes each mutate their own copy; threads race on one.

RNG identification is by construction (``default_rng``/``Generator``/
``spawn_generators`` assignments) and by the repo's naming convention
(``rng``, ``*_rng``).  Callables the resolver cannot pin down (bound
methods on unknown receivers, ambiguous names) are skipped, never
guessed at.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Set, Tuple

from repro.analysis.engine import Finding
from repro.analysis.project import (
    ArgSummary,
    CallSummary,
    FunctionSummary,
    ModuleSummary,
    ProjectIndex,
    ProjectRule,
)

__all__ = [
    "UnpicklableTaskRule",
    "CapturedRngRule",
    "GlobalMutationRule",
    "PARALLEL_RULES",
    "iter_dispatch_sites",
]

#: method / function names whose first argument is an executor task
DISPATCH_ATTRS = frozenset({"map_tasks"})


def iter_dispatch_sites(
    index: ProjectIndex,
) -> Iterator[Tuple[ModuleSummary, FunctionSummary, CallSummary, ArgSummary]]:
    """Every ``map_tasks(task, items)`` call site with its task argument."""
    for summary in index.summaries:
        for func in summary.functions:
            for call in func.calls:
                if call.attr not in DISPATCH_ATTRS or not call.args:
                    continue
                yield summary, func, call, call.args[0]


def _dispatch_roots(
    index: ProjectIndex,
) -> List[Tuple[ModuleSummary, CallSummary, str]]:
    """Resolved task callables: (dispatching module, site, qualified root)."""
    roots: List[Tuple[ModuleSummary, CallSummary, str]] = []
    for summary, func, call, task in iter_dispatch_sites(index):
        target: Optional[str] = None
        if task.kind == "partial" and task.partial_target is not None:
            target = index.resolve_callee(
                summary,
                CallSummary(
                    task.partial_target,
                    task.partial_target.split(".")[-1],
                    call.line,
                    call.col,
                ),
            )
        elif task.kind in ("name", "localfunc"):
            target = index.resolve_callee(
                summary, CallSummary(task.text, task.text.split(".")[-1],
                                     call.line, call.col)
            )
        if target is not None and target in index.functions:
            roots.append((summary, call, target))
    return roots


class UnpicklableTaskRule(ProjectRule):
    name = "par-unpicklable-task"
    description = (
        "lambda or locally-defined function dispatched through map_tasks; "
        "the process backend cannot pickle it"
    )
    library_only = True

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        for summary, func, call, task in iter_dispatch_sites(index):
            if task.kind in ("lambda", "localfunc", "partial-local"):
                what = (
                    "a lambda"
                    if task.kind == "lambda"
                    else f"locally-defined `{task.text}`"
                )
                yield Finding(
                    path=summary.path,
                    line=call.line,
                    col=call.col,
                    rule=self.name,
                    message=(
                        f"dispatches {what} through map_tasks; ProcessExecutor "
                        "cannot pickle it -- use a module-level function "
                        "(optionally functools.partial over one)"
                    ),
                )


class CapturedRngRule(ProjectRule):
    name = "par-captured-rng"
    description = (
        "RNG generator captured by / shipped with an executor task; "
        "spawn per-task streams with spawn_seeds instead"
    )
    library_only = True

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        # (a) the dispatched callable itself captures or receives an RNG
        for summary, func, call, task in iter_dispatch_sites(index):
            if task.captures_rng:
                yield Finding(
                    path=summary.path,
                    line=call.line,
                    col=call.col,
                    rule=self.name,
                    message=(
                        "executor task captures or is bound to a single RNG "
                        "generator; all tasks would share (a copy of) one "
                        "stream -- derive per-task streams with "
                        "repro.runtime.executor.spawn_seeds and ship seeds "
                        "in the item list"
                    ),
                )
        # (b) anything reachable from a dispatch root reads a module-level RNG
        reachable = index.reachable_from(
            root for _, _, root in _dispatch_roots(index)
        )
        seen: Set[Tuple[str, int]] = set()
        for qualname in sorted(reachable):
            summary, func = index.functions[qualname]
            for name, line, col in func.rng_global_reads:
                if (summary.path, line) in seen:
                    continue
                seen.add((summary.path, line))
                yield Finding(
                    path=summary.path,
                    line=line,
                    col=col,
                    rule=self.name,
                    message=(
                        f"`{func.qualname}` is dispatched through map_tasks "
                        f"but reads module-level RNG `{name}`; every task "
                        "shares its stream -- thread per-task generators "
                        "explicitly"
                    ),
                )


class GlobalMutationRule(ProjectRule):
    name = "par-global-mutation"
    description = (
        "function reachable from a map_tasks dispatch mutates module-level "
        "state (races under threads, silently diverges across processes)"
    )
    library_only = True

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        reachable = index.reachable_from(
            root for _, _, root in _dispatch_roots(index)
        )
        seen: Set[Tuple[str, int]] = set()
        for qualname in sorted(reachable):
            summary, func = index.functions[qualname]
            for name, line, col, how in func.global_writes:
                if (summary.path, line) in seen:
                    continue
                seen.add((summary.path, line))
                yield Finding(
                    path=summary.path,
                    line=line,
                    col=col,
                    rule=self.name,
                    message=(
                        f"`{func.qualname}` mutates module-level `{name}` "
                        f"({how}) and is reachable from a map_tasks dispatch; "
                        "workers race on it under threads and diverge per "
                        "process -- pass state through task items/results"
                    ),
                )


PARALLEL_RULES = (UnpicklableTaskRule(), CapturedRngRule(), GlobalMutationRule())
