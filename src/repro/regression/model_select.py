"""k-fold cross-validation and model selection.

The calibration stage picks, per specification, whichever regression
pipeline cross-validates best on the training devices.  Model factories
(zero-argument callables returning unfitted models) keep state from
leaking between folds.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.regression.metrics import rmse

__all__ = ["kfold_indices", "cross_val_rmse", "select_best_model"]

ModelFactory = Callable[[], object]


def kfold_indices(
    n: int, k: int, rng: np.random.Generator
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Shuffled k-fold split of ``range(n)`` into (train, test) index pairs."""
    if k < 2:
        raise ValueError("k must be >= 2")
    if n < k:
        raise ValueError(f"cannot split {n} samples into {k} folds")
    perm = rng.permutation(n)
    folds = np.array_split(perm, k)
    out = []
    for i in range(k):
        test = folds[i]
        train = np.concatenate([folds[j] for j in range(k) if j != i])
        out.append((train, test))
    return out


def cross_val_rmse(
    factory: ModelFactory,
    x: np.ndarray,
    y: np.ndarray,
    k: int,
    rng: np.random.Generator,
) -> float:
    """Mean held-out RMSE over ``k`` folds.

    A model that fails to fit on some fold (e.g. a degenerate design
    matrix) is charged an infinite score rather than crashing the
    selection loop.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    scores = []
    for train, test in kfold_indices(len(x), k, rng):
        model = factory()
        try:
            model.fit(x[train], y[train])
            scores.append(rmse(y[test], model.predict(x[test])))
        except (np.linalg.LinAlgError, ValueError):
            return float("inf")
    return float(np.mean(scores))


def select_best_model(
    candidates: Dict[str, ModelFactory],
    x: np.ndarray,
    y: np.ndarray,
    k: int = 5,
    rng: np.random.Generator | None = None,
) -> Tuple[str, object, Dict[str, float]]:
    """Cross-validate every candidate and refit the winner on all data.

    Returns ``(name, fitted_model, scores)``.
    """
    if not candidates:
        raise ValueError("no candidate models supplied")
    rng = rng if rng is not None else np.random.default_rng()
    # one split seed shared by every candidate so they see the same folds
    split_seed = int(rng.integers(0, 2**31 - 1))
    scores: Dict[str, float] = {}
    for name, factory in candidates.items():
        scores[name] = cross_val_rmse(
            factory, x, y, k, np.random.default_rng(split_seed)
        )
    best_name = min(scores, key=scores.get)
    if not np.isfinite(scores[best_name]):
        raise RuntimeError("every candidate model failed cross-validation")
    best = candidates[best_name]()
    best.fit(np.asarray(x, dtype=float), np.asarray(y, dtype=float))
    return best_name, best, scores
