"""Prediction-quality metrics.

The paper reports "std(err)" on its scatter plots (Figures 8-10) and "RMS
error" for the hardware experiment (Figures 12-13); both are provided
here along with the usual companions.
"""

from __future__ import annotations

import numpy as np

__all__ = ["rmse", "std_err", "mae", "bias", "r2_score"]


def _pair(y_true, y_pred):
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    if y_true.shape != y_pred.shape or y_true.ndim != 1:
        raise ValueError("y_true and y_pred must be equal-length vectors")
    if len(y_true) == 0:
        raise ValueError("empty inputs")
    return y_true, y_pred


def rmse(y_true, y_pred) -> float:
    """Root-mean-square prediction error."""
    y_true, y_pred = _pair(y_true, y_pred)
    return float(np.sqrt(np.mean((y_pred - y_true) ** 2)))


def std_err(y_true, y_pred) -> float:
    """Standard deviation of the prediction error (bias removed).

    This is the "std(err)" the paper quotes under its scatter plots.
    """
    y_true, y_pred = _pair(y_true, y_pred)
    return float(np.std(y_pred - y_true))


def mae(y_true, y_pred) -> float:
    """Mean absolute prediction error."""
    y_true, y_pred = _pair(y_true, y_pred)
    return float(np.mean(np.abs(y_pred - y_true)))


def bias(y_true, y_pred) -> float:
    """Mean signed prediction error."""
    y_true, y_pred = _pair(y_true, y_pred)
    return float(np.mean(y_pred - y_true))


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination.

    1 for perfect prediction, 0 for predicting the mean, negative for
    worse than the mean.  Returns 0 when the targets are constant and
    perfectly predicted, -inf when constant and mispredicted.
    """
    y_true, y_pred = _pair(y_true, y_pred)
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - np.mean(y_true)) ** 2))
    if ss_tot == 0.0:
        return 0.0 if ss_res == 0.0 else -np.inf
    return 1.0 - ss_res / ss_tot
