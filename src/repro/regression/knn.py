"""Distance-weighted k-nearest-neighbour regression.

A fully nonparametric calibration model: predict a device's spec as the
inverse-distance-weighted average of the most similar training devices'
measured specs.  Works well when the training set densely covers the
process spread, degrades gracefully when it does not -- which is exactly
the trade the paper's hardware experiment faced with only 28 calibration
devices.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["KNNRegressor"]


class KNNRegressor:
    """k-NN with inverse-distance weights.

    Parameters
    ----------
    k:
        Neighbour count (clipped to the training-set size at fit time).
    weights:
        ``"distance"`` (default) or ``"uniform"``.
    """

    def __init__(self, k: int = 5, weights: str = "distance"):
        if k < 1:
            raise ValueError("k must be >= 1")
        if weights not in ("distance", "uniform"):
            raise ValueError("weights must be 'distance' or 'uniform'")
        self.k = int(k)
        self.weights = weights
        self._x: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "KNNRegressor":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim != 2 or y.ndim != 1 or len(x) != len(y):
            raise ValueError("x must be (n, d) and y (n,)")
        if len(x) < 1:
            raise ValueError("training set is empty")
        self._x = x.copy()
        self._y = y.copy()
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self._x is None or self._y is None:
            raise RuntimeError("model is not fitted")
        x = np.asarray(x, dtype=float)
        single = x.ndim == 1
        if single:
            x = x[None, :]
        if x.shape[1] != self._x.shape[1]:
            raise ValueError(
                f"feature count {x.shape[1]} != fitted {self._x.shape[1]}"
            )
        k = min(self.k, len(self._x))
        # pairwise squared distances, (n_query, n_train)
        d2 = (
            np.sum(x**2, axis=1)[:, None]
            - 2.0 * x @ self._x.T
            + np.sum(self._x**2, axis=1)[None, :]
        )
        d2 = np.maximum(d2, 0.0)
        idx = np.argpartition(d2, kth=k - 1, axis=1)[:, :k]
        rows = np.arange(len(x))[:, None]
        neigh_d = np.sqrt(d2[rows, idx])
        neigh_y = self._y[idx]
        if self.weights == "uniform":
            pred = neigh_y.mean(axis=1)
        else:
            # exact matches get all the weight
            w = 1.0 / np.maximum(neigh_d, 1e-12)
            exact = neigh_d <= 1e-12
            has_exact = exact.any(axis=1)
            w[has_exact] = exact[has_exact].astype(float)
            pred = np.sum(w * neigh_y, axis=1) / np.sum(w, axis=1)
        return pred[0] if single else pred
