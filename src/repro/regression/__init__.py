"""Nonlinear regression substrate for signature calibration.

The paper's FASTest Runtime System (Figure 5) extracts "normalized
calibration relationships between the specifications and signatures"
using "nonlinear regression techniques" [refs 4, 9].  scikit-learn is not
a dependency; the needed pieces are implemented here from scratch:

* :mod:`repro.regression.scaling` -- feature/target standardization (the
  "normalization" boxes of Figure 5).
* :mod:`repro.regression.linear` -- ordinary and ridge least squares.
* :mod:`repro.regression.pca` -- principal-component compression of the
  FFT-bin signatures.
* :mod:`repro.regression.polynomial` -- polynomial feature expansion over
  ridge.
* :mod:`repro.regression.knn` -- distance-weighted nearest neighbours.
* :mod:`repro.regression.mars` -- forward-stagewise adaptive hinge
  regression (MARS-style).
* :mod:`repro.regression.model_select` -- k-fold cross-validation and
  model selection.
* :mod:`repro.regression.metrics` -- RMS error, std(err) and friends, the
  statistics the paper reports under Figures 8-13.
"""

from repro.regression.scaling import StandardScaler
from repro.regression.linear import LinearRegression, RidgeRegression
from repro.regression.pca import PCA
from repro.regression.polynomial import PolynomialFeatures, PolynomialRidge
from repro.regression.knn import KNNRegressor
from repro.regression.mars import MARSRegressor
from repro.regression.pipeline import Pipeline
from repro.regression.model_select import (
    kfold_indices,
    cross_val_rmse,
    select_best_model,
)
from repro.regression.metrics import rmse, std_err, mae, r2_score, bias

__all__ = [
    "StandardScaler",
    "LinearRegression",
    "RidgeRegression",
    "PCA",
    "PolynomialFeatures",
    "PolynomialRidge",
    "KNNRegressor",
    "MARSRegressor",
    "Pipeline",
    "kfold_indices",
    "cross_val_rmse",
    "select_best_model",
    "rmse",
    "std_err",
    "mae",
    "r2_score",
    "bias",
]
