"""Ordinary and ridge least squares.

The workhorse calibration models.  With standardized FFT-bin features
(tens to hundreds of columns) and on the order of a hundred training
devices, ridge regularization is what keeps the calibration from chasing
measurement noise -- exactly the Equation-10 trade-off, now at the
regression stage.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["LinearRegression", "RidgeRegression"]


class RidgeRegression:
    """Linear model ``y = X w + b`` with L2 penalty on ``w``.

    Solved in closed form: ``w = (X^T X + alpha I)^-1 X^T y`` on centered
    data, so the intercept is never penalized.

    lint-ranges: alpha=[0, 1e6]
    """

    def __init__(self, alpha: float = 1.0):
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = float(alpha)
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RidgeRegression":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim != 2:
            raise ValueError("x must be (n_samples, n_features)")
        if y.ndim != 1 or len(y) != len(x):
            raise ValueError("y must be a vector matching x's row count")
        if len(x) < 2:
            raise ValueError("need at least two training samples")
        x_mean = x.mean(axis=0)
        y_mean = y.mean()
        xc = x - x_mean
        yc = y - y_mean
        n_features = x.shape[1]
        gram = xc.T @ xc + self.alpha * np.eye(n_features)
        # solve instead of invert: better conditioned and faster
        try:
            w = np.linalg.solve(gram, xc.T @ yc)
        except np.linalg.LinAlgError:
            w, *_ = np.linalg.lstsq(gram, xc.T @ yc, rcond=None)
        self.coef_ = w
        self.intercept_ = float(y_mean - x_mean @ w)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        x = np.asarray(x, dtype=float)
        single = x.ndim == 1
        if single:
            x = x[None, :]
        if x.shape[1] != len(self.coef_):
            raise ValueError(
                f"feature count {x.shape[1]} != fitted {len(self.coef_)}"
            )
        out = x @ self.coef_ + self.intercept_
        return out[0] if single else out


class LinearRegression(RidgeRegression):
    """Ordinary least squares (ridge with a tiny numerical alpha).

    A strictly zero penalty can leave the normal equations singular when
    features outnumber samples; the 1e-10 floor keeps the closed form
    usable without meaningfully biasing well-posed fits.
    """

    def __init__(self):
        super().__init__(alpha=1e-10)
