"""Polynomial feature expansion and polynomial ridge regression.

The calibration relationship between FFT-bin magnitudes and specs in dB
is mildly nonlinear (log compression, describing-function gain).  A
degree-2 polynomial over a PCA-compressed signature captures most of that
curvature at very low model complexity.
"""

from __future__ import annotations

from itertools import combinations_with_replacement
from typing import List, Optional, Tuple

import numpy as np

from repro.regression.linear import RidgeRegression

__all__ = ["PolynomialFeatures", "PolynomialRidge"]


class PolynomialFeatures:
    """Expand features with all monomials up to ``degree``.

    For inputs ``(x1, .., xd)`` and degree 2 the output columns are
    ``x1..xd, x1^2, x1 x2, .., xd^2`` (no constant column -- downstream
    models fit their own intercept).
    """

    def __init__(self, degree: int = 2, interaction_only: bool = False):
        if degree < 1:
            raise ValueError("degree must be >= 1")
        self.degree = int(degree)
        self.interaction_only = bool(interaction_only)
        self._combos: Optional[List[Tuple[int, ...]]] = None
        self._n_inputs: Optional[int] = None

    def fit(self, x: np.ndarray) -> "PolynomialFeatures":
        x = np.asarray(x, dtype=float)
        if x.ndim != 2:
            raise ValueError("x must be (n_samples, n_features)")
        d = x.shape[1]
        combos: List[Tuple[int, ...]] = []
        for deg in range(1, self.degree + 1):
            for combo in combinations_with_replacement(range(d), deg):
                if self.interaction_only and len(set(combo)) != len(combo):
                    continue
                combos.append(combo)
        self._combos = combos
        self._n_inputs = d
        return self

    @property
    def n_output_features(self) -> int:
        if self._combos is None:
            raise RuntimeError("not fitted")
        return len(self._combos)

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self._combos is None or self._n_inputs is None:
            raise RuntimeError("not fitted")
        x = np.asarray(x, dtype=float)
        single = x.ndim == 1
        if single:
            x = x[None, :]
        if x.shape[1] != self._n_inputs:
            raise ValueError(
                f"feature count {x.shape[1]} != fitted {self._n_inputs}"
            )
        cols = [np.prod(x[:, combo], axis=1) for combo in self._combos]
        out = np.column_stack(cols)
        return out[0] if single else out

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)


class PolynomialRidge:
    """Ridge regression on polynomial features.

    Intended for low-dimensional inputs (apply PCA first for FFT-bin
    signatures); the feature count grows combinatorially with dimension.
    """

    def __init__(self, degree: int = 2, alpha: float = 1.0):
        self.features = PolynomialFeatures(degree=degree)
        self.model = RidgeRegression(alpha=alpha)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "PolynomialRidge":
        z = self.features.fit_transform(np.asarray(x, dtype=float))
        self.model.fit(z, np.asarray(y, dtype=float))
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.model.predict(self.features.transform(np.asarray(x, dtype=float)))
