"""Forward-stagewise adaptive hinge regression (MARS-style).

A from-scratch implementation of the multivariate-adaptive-regression
family the paper's references [4] and [9] draw on: the model is a sum of
hinge basis functions

    y ~ b0 + sum_m c_m * h_m(x),    h(x) = max(0, +/-(x_j - t))

grown greedily.  Each forward step scans every (feature, knot, sign)
candidate, adds the pair of hinges that most reduces the residual sum of
squares, and refits all coefficients by least squares.  Growth stops at
``max_terms`` or when the generalized cross-validation (GCV) score stops
improving.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

__all__ = ["HingeBasis", "MARSRegressor"]


@dataclass(frozen=True)
class HingeBasis:
    """One hinge function ``max(0, sign * (x[feature] - knot))``."""

    feature: int
    knot: float
    sign: int  # +1 or -1

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        v = self.sign * (x[:, self.feature] - self.knot)
        return np.maximum(v, 0.0)


class MARSRegressor:
    """Greedy hinge-basis regression.

    Parameters
    ----------
    max_terms:
        Maximum number of hinge bases (pairs count as two).
    n_knots:
        Candidate knots per feature (taken at training-data quantiles).
    min_improvement:
        Forward growth stops when the relative GCV improvement of the
        best candidate falls below this threshold.
    ridge:
        Small L2 term stabilizing the repeated least-squares refits.
    """

    def __init__(
        self,
        max_terms: int = 10,
        n_knots: int = 7,
        min_improvement: float = 1e-4,
        ridge: float = 1e-8,
    ):
        if max_terms < 2:
            raise ValueError("max_terms must be >= 2")
        if n_knots < 1:
            raise ValueError("n_knots must be >= 1")
        self.max_terms = int(max_terms)
        self.n_knots = int(n_knots)
        self.min_improvement = float(min_improvement)
        self.ridge = float(ridge)
        self.bases_: List[HingeBasis] = []
        self.coef_: Optional[np.ndarray] = None  # includes intercept first

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------
    def _design(self, x: np.ndarray, bases: List[HingeBasis]) -> np.ndarray:
        cols = [np.ones(len(x))]
        cols.extend(b.evaluate(x) for b in bases)
        return np.column_stack(cols)

    def _solve(self, design: np.ndarray, y: np.ndarray) -> np.ndarray:
        gram = design.T @ design + self.ridge * np.eye(design.shape[1])
        return np.linalg.solve(gram, design.T @ y)

    def _gcv(self, rss: float, n: int, n_params: int) -> float:
        """Friedman's GCV criterion with the usual complexity penalty."""
        penalty = n_params + 0.5 * 3.0 * (n_params - 1)
        denom = (1.0 - penalty / n) ** 2 if penalty < n else np.inf
        return np.inf if denom == 0 or not np.isfinite(denom) else rss / (n * denom)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "MARSRegressor":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim != 2 or y.ndim != 1 or len(x) != len(y):
            raise ValueError("x must be (n, d) and y (n,)")
        n, d = x.shape
        if n < 4:
            raise ValueError("need at least four training samples")

        # candidate knots at interior quantiles of each feature
        qs = np.linspace(0.0, 1.0, self.n_knots + 2)[1:-1]
        knots = [np.quantile(x[:, j], qs) for j in range(d)]

        bases: List[HingeBasis] = []
        design = self._design(x, bases)
        coef = self._solve(design, y)
        resid = y - design @ coef
        best_gcv = self._gcv(float(resid @ resid), n, design.shape[1])

        while len(bases) + 2 <= self.max_terms:
            best: Optional[tuple] = None
            for j in range(d):
                for t in knots[j]:
                    pair = [
                        HingeBasis(j, float(t), +1),
                        HingeBasis(j, float(t), -1),
                    ]
                    if any(b in bases for b in pair):
                        continue
                    trial = np.column_stack(
                        [design] + [b.evaluate(x) for b in pair]
                    )
                    c = self._solve(trial, y)
                    r = y - trial @ c
                    gcv = self._gcv(float(r @ r), n, trial.shape[1])
                    if best is None or gcv < best[0]:
                        best = (gcv, pair, trial, c)
            if best is None:
                break
            gcv, pair, trial, c = best
            if best_gcv - gcv < self.min_improvement * max(best_gcv, 1e-300):
                break
            bases.extend(pair)
            design = trial
            coef = c
            best_gcv = gcv

        self.bases_ = bases
        self.coef_ = coef
        return self

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def predict(self, x: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        x = np.asarray(x, dtype=float)
        single = x.ndim == 1
        if single:
            x = x[None, :]
        out = self._design(x, self.bases_) @ self.coef_
        return out[0] if single else out

    @property
    def n_terms(self) -> int:
        """Number of hinge bases in the fitted model."""
        return len(self.bases_)
