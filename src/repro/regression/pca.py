"""Principal-component analysis from scratch.

The FFT-magnitude signature has as many components as spectrum bins, but
the underlying process variation spans only a handful of directions (the
LNA's signature is essentially two-dimensional).  PCA compresses the
signature before nonlinear models that scale poorly with input dimension
(polynomial expansion, k-NN, MARS).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["PCA"]


class PCA:
    """SVD-based PCA.

    Parameters
    ----------
    n_components:
        Number of components kept.  ``None`` keeps all (up to the data
        rank).
    """

    def __init__(self, n_components: Optional[int] = None):
        if n_components is not None and n_components < 1:
            raise ValueError("n_components must be >= 1 or None")
        self.n_components = n_components
        self.mean_: Optional[np.ndarray] = None
        self.components_: Optional[np.ndarray] = None  # (n_components, n_features)
        self.explained_variance_: Optional[np.ndarray] = None
        self.total_variance_: float = 0.0

    def fit(self, x: np.ndarray) -> "PCA":
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or len(x) < 2:
            raise ValueError("fit expects at least two samples")
        self.mean_ = x.mean(axis=0)
        xc = x - self.mean_
        _u, s, vt = np.linalg.svd(xc, full_matrices=False)
        var = s**2 / max(len(x) - 1, 1)
        k = len(s) if self.n_components is None else min(self.n_components, len(s))
        self.components_ = vt[:k]
        self.explained_variance_ = var[:k]
        self.total_variance_ = float(var.sum())
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.components_ is None or self.mean_ is None:
            raise RuntimeError("PCA is not fitted")
        x = np.asarray(x, dtype=float)
        single = x.ndim == 1
        if single:
            x = x[None, :]
        if x.shape[1] != len(self.mean_):
            raise ValueError(
                f"feature count {x.shape[1]} != fitted {len(self.mean_)}"
            )
        z = (x - self.mean_) @ self.components_.T
        return z[0] if single else z

    def inverse_transform(self, z: np.ndarray) -> np.ndarray:
        if self.components_ is None or self.mean_ is None:
            raise RuntimeError("PCA is not fitted")
        z = np.asarray(z, dtype=float)
        single = z.ndim == 1
        if single:
            z = z[None, :]
        x = z @ self.components_ + self.mean_
        return x[0] if single else x

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)

    def explained_variance_ratio(self) -> np.ndarray:
        """Fraction of the *total* data variance captured per component."""
        if self.explained_variance_ is None:
            raise RuntimeError("PCA is not fitted")
        if self.total_variance_ == 0.0:
            return np.zeros_like(self.explained_variance_)
        return self.explained_variance_ / self.total_variance_
