"""Composable transform + regressor pipelines.

A pipeline owns the full signature-to-spec path of Figure 5:
standardize the raw FFT-bin signature, optionally compress it with PCA,
then regress.  The same fitted pipeline is used at calibration time (fit)
and production time (predict).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = ["Pipeline"]


class Pipeline:
    """Sequential transforms ending in a regressor.

    Every step except the last must expose ``fit``/``transform``; the
    last must expose ``fit(X, y)``/``predict(X)``.
    """

    def __init__(self, steps: Sequence):
        steps = list(steps)
        if not steps:
            raise ValueError("pipeline needs at least a final regressor")
        for s in steps[:-1]:
            if not (hasattr(s, "fit") and hasattr(s, "transform")):
                raise TypeError(f"{s!r} is not a transformer")
        last = steps[-1]
        if not (hasattr(last, "fit") and hasattr(last, "predict")):
            raise TypeError(f"{last!r} is not a regressor")
        self.steps: List = steps

    def fit(self, x: np.ndarray, y: np.ndarray) -> "Pipeline":
        z = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if z.ndim != 2:
            raise ValueError(
                f"x must be 2-D (n_samples, n_features), got shape {z.shape}"
            )
        if len(z) != len(y):
            raise ValueError(
                f"x and y disagree on sample count: {len(z)} signatures "
                f"vs {len(y)} spec values"
            )
        self._n_features = z.shape[1]
        for s in self.steps[:-1]:
            z = s.fit(z).transform(z)
        self.steps[-1].fit(z, y)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        z = np.asarray(x, dtype=float)
        if z.ndim != 2:
            raise ValueError(
                f"x must be 2-D (n_samples, n_features), got shape {z.shape}"
            )
        n_fitted = getattr(self, "_n_features", None)
        if n_fitted is not None and z.shape[1] != n_fitted:
            raise ValueError(
                f"pipeline was fitted on {n_fitted} features but got "
                f"{z.shape[1]}"
            )
        for s in self.steps[:-1]:
            z = s.transform(z)
        return self.steps[-1].predict(z)
