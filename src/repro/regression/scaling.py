"""Feature and target standardization.

Figure 5 of the paper normalizes both signatures and specifications
before fitting the calibration relationships; :class:`StandardScaler`
is that normalization (zero mean, unit variance per column, with
constant columns left untouched rather than divided by zero).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["StandardScaler"]


class StandardScaler:
    """Column-wise standardization fitted on training data.

    ``transform`` accepts either a matrix ``(n_samples, n_features)`` or a
    single sample vector ``(n_features,)`` and returns the same shape.
    """

    def __init__(self):
        self.mean_: Optional[np.ndarray] = None
        self.scale_: Optional[np.ndarray] = None

    @property
    def n_features(self) -> int:
        if self.mean_ is None:
            raise RuntimeError("scaler is not fitted")
        return len(self.mean_)

    def fit(self, x: np.ndarray) -> "StandardScaler":
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or len(x) < 1:
            raise ValueError("fit expects a non-empty (n_samples, n_features) array")
        self.mean_ = x.mean(axis=0)
        std = x.std(axis=0)
        # constant columns carry no information; leave them unscaled so
        # transform() maps them to exactly zero
        self.scale_ = np.where(std > 0.0, std, 1.0)
        return self

    def _coerce(self, x: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("scaler is not fitted")
        x = np.asarray(x, dtype=float)
        if x.ndim not in (1, 2):
            raise ValueError("expected a vector or a matrix")
        if x.shape[-1] != self.n_features:
            raise ValueError(
                f"feature count {x.shape[-1]} != fitted {self.n_features}"
            )
        return x

    def transform(self, x: np.ndarray) -> np.ndarray:
        x = self._coerce(x)
        return (x - self.mean_) / self.scale_

    def inverse_transform(self, z: np.ndarray) -> np.ndarray:
        z = self._coerce(z)
        return z * self.scale_ + self.mean_

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)
