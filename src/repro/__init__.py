"""repro -- a signature test framework for rapid production testing of RF circuits.

A faithful, self-contained Python reproduction of

    R. Voorakaranam, S. Cherubal, A. Chatterjee,
    "A Signature Test Framework for Rapid Production Testing of RF
    Circuits", Design, Automation and Test in Europe (DATE), 2002.

The library replaces every piece of the paper's testbed with a simulated
substrate and implements the paper's contribution on top of it:

* :mod:`repro.dsp` -- waveforms, mixers, filters, FFT signatures.
* :mod:`repro.circuits` -- process-varying DUT models (analytic 900 MHz
  BJT LNA, behavioral amplifiers, PA, attenuator, mixer DUT).
* :mod:`repro.instruments` -- conventional RF ATE instruments and the
  low-cost tester's AWG / RF source / digitizer.
* :mod:`repro.loadboard` -- the modulation/demodulation signature path
  of Figures 2-3, in an exact harmonic-envelope simulation.
* :mod:`repro.testgen` -- sensitivity analysis, SVD mapping, the
  Equation-10 objective and the genetic PWL stimulus optimizer.
* :mod:`repro.regression` -- from-scratch regression stack (ridge, PCA,
  polynomial, k-NN, MARS, cross-validation).
* :mod:`repro.runtime` -- the FASTest-style calibration + production
  flow and test-economics models.
* :mod:`repro.experiments` -- drivers reproducing every figure of the
  paper's evaluation.

Quickstart::

    from repro import run_simulation_experiment
    result = run_simulation_experiment()
    print(result.summary())          # Figures 8-10 in three lines
"""

__version__ = "1.0.0"

from repro.circuits import (
    LNA900,
    Attenuator,
    BehavioralAmplifier,
    DownconversionMixerDUT,
    ParameterSpace,
    PowerAmplifier,
    ProcessParameter,
    RFDevice,
    SpecSet,
    lna_parameter_space,
)
from repro.dsp import PiecewiseLinearStimulus, Waveform
from repro.experiments import (
    run_hardware_experiment,
    run_phase_study,
    run_simulation_experiment,
)
from repro.instruments import ConventionalRFATE
from repro.loadboard import (
    SignaturePathConfig,
    SignatureTestBoard,
    hardware_config,
    simulation_config,
)
from repro.runtime import (
    CalibrationModel,
    CalibrationSession,
    GoldenDeviceNormalizer,
    GoldenSignatureMonitor,
    ProductionTestFlow,
    SignatureOutlierScreen,
    SpecificationLimits,
    TestProgram,
    compare_flows,
    load_test_program,
    save_test_program,
)
from repro.testgen import (
    GAConfig,
    LinearSignatureMap,
    SignatureStimulusOptimizer,
    StimulusEncoding,
)

__all__ = [
    "__version__",
    # devices
    "RFDevice",
    "SpecSet",
    "LNA900",
    "lna_parameter_space",
    "BehavioralAmplifier",
    "PowerAmplifier",
    "Attenuator",
    "DownconversionMixerDUT",
    "ProcessParameter",
    "ParameterSpace",
    # signals
    "Waveform",
    "PiecewiseLinearStimulus",
    # signature path
    "SignaturePathConfig",
    "SignatureTestBoard",
    "simulation_config",
    "hardware_config",
    # test generation
    "SignatureStimulusOptimizer",
    "StimulusEncoding",
    "GAConfig",
    "LinearSignatureMap",
    # runtime
    "CalibrationSession",
    "CalibrationModel",
    "ProductionTestFlow",
    "SpecificationLimits",
    "compare_flows",
    "ConventionalRFATE",
    "SignatureOutlierScreen",
    "GoldenDeviceNormalizer",
    "GoldenSignatureMonitor",
    "TestProgram",
    "save_test_program",
    "load_test_program",
    # experiments
    "run_simulation_experiment",
    "run_hardware_experiment",
    "run_phase_study",
]
