"""Harmonic-envelope signal algebra.

Simulating the signature path at the 900 MHz carrier rate would need
multi-GHz sampling inside the genetic optimizer's fitness loop.  Instead
we represent every signal as a sum of complex envelopes on the carrier
harmonics:

    v(t) = E_0(t) + sum_{h>0} Re[ E_h(t) exp(j h w_c t) ]

with ``E_0`` real.  Multiplication of two such signals -- the only
nonlinear operation the mixers and the polynomial DUT need -- is an exact
convolution over harmonic indices:

    T_k = sum_{i+j=k} T^A_i T^B_j,

where ``T_0 = E_0``, ``T_h = E_h / 2`` and ``T_{-h} = conj(E_h) / 2`` is
the two-sided form.  Because the mixers generate at most 3rd harmonics and
the DUT polynomial is cubic, harmonic indices stay below 10 and the
algebra is exact (no truncation error for the default ``max_harmonic``).

Envelope arrays are sampled at the baseband rate, so a full signature-path
simulation costs a few hundred small array products instead of millions of
carrier-rate samples -- the math in Section 2.1 of the paper (Equations
1-5) falls out of this algebra as a special case.

Batch axis
----------
Envelopes may be 1-D ``(n,)`` records or 2-D ``(batch, n)`` matrices whose
rows are independent devices sharing one time grid.  Every operation
(addition, scaling, harmonic products, filtering) acts along the last
axis, so mixing a device batch costs one NumPy call instead of ``batch``
calls; row ``i`` of a batched result is bit-identical to running the same
algebra on the 1-D envelopes of device ``i`` alone.  Mixed operands
broadcast: a shared 1-D stimulus envelope times a ``(batch, n)`` gain
matrix yields a batched signal.

Envelope arrays are treated as immutable once inside a signal: operations
share arrays between instances instead of copying, so callers must never
mutate ``envelopes`` values in place.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Tuple, Union

import numpy as np

from repro.dsp.waveform import Waveform

__all__ = ["EnvelopeSignal", "one_pole_lowpass"]


def _first_order_recurrence(c: np.ndarray, r: float) -> np.ndarray:
    """Solve ``y[i] = c[i] + r * y[i-1]`` (``y[-1] = 0``) along the last axis.

    Recursive doubling: after ``s`` rounds every sample holds the partial
    sum ``sum_{k<2^s} r^k c[i-k]``, so ``ceil(log2 n)`` vectorized passes
    replace the per-sample Python loop.  For the stable filters used here
    (``|r| < 1``) the powers of ``r`` only shrink, so the formulation is
    numerically benign -- far-past contributions underflow to zero exactly
    as they become negligible.
    """
    y = np.asarray(c)
    n = y.shape[-1]
    step = 1
    gain = r
    while step < n:
        shifted = np.zeros_like(y)
        shifted[..., step:] = y[..., :-step]
        y = y + gain * shifted
        gain = gain * gain
        step *= 2
    return y


def one_pole_lowpass(
    env: np.ndarray, sample_rate: float, bandwidth_hz: float
) -> np.ndarray:
    """Bilinear-transform one-pole low-pass along the last axis.

    The discretization of ``H(s) = 1 / (1 + s / w_c)`` with frequency
    pre-warping, applied to a (possibly complex, possibly batched) record
    with zero initial conditions:

        y[i] = b0 * (x[i] + x[i-1]) - a1 * y[i-1].

    Vectorized over arbitrary leading axes; row ``i`` of a batched input
    filters bit-identically to filtering that row alone.
    """
    if not (0.0 < bandwidth_hz < sample_rate / 2.0):
        raise ValueError(
            f"bandwidth must lie in (0, envelope Nyquist): got "
            f"{bandwidth_hz:g} Hz with Nyquist {sample_rate / 2.0:g} Hz"
        )
    env = np.asarray(env)
    wc = 2.0 * sample_rate * math.tan(math.pi * bandwidth_hz / sample_rate)
    k = 2.0 * sample_rate
    b0 = wc / (k + wc)
    a1 = (wc - k) / (k + wc)
    x_prev = np.zeros_like(env)
    x_prev[..., 1:] = env[..., :-1]
    return _first_order_recurrence(b0 * (env + x_prev), -a1)


class EnvelopeSignal:
    """A real signal represented by complex envelopes at carrier harmonics.

    Parameters
    ----------
    envelopes:
        Mapping of harmonic index ``h >= 0`` to a complex envelope array,
        either 1-D ``(n,)`` or 2-D ``(batch, n)`` (one row per device).
        All arrays must share one record length ``n``; 1-D envelopes are
        broadcast across the batch when 2-D ones are present.  ``E_0`` is
        coerced to real.
    sample_rate:
        Envelope sampling rate (baseband rate), Hz.
    carrier_freq:
        The carrier frequency the harmonic indices refer to, Hz.
    """

    __slots__ = ("envelopes", "sample_rate", "carrier_freq", "_two_sided_cache")

    def __init__(
        self,
        envelopes: Dict[int, np.ndarray],
        sample_rate: float,
        carrier_freq: float,
    ):
        if not (sample_rate > 0) or not (carrier_freq > 0):
            raise ValueError("sample_rate and carrier_freq must be positive")
        clean: Dict[int, np.ndarray] = {}
        n = None
        batch = None
        for h, env in envelopes.items():
            if h < 0:
                raise ValueError("harmonic indices must be >= 0 (one-sided form)")
            arr = np.asarray(env, dtype=complex)
            if arr.ndim not in (1, 2):
                raise ValueError(f"envelope {h} must be 1-D or 2-D (batch, n)")
            if n is None:
                n = arr.shape[-1]
            elif arr.shape[-1] != n:
                raise ValueError("all envelopes must share one length")
            if arr.ndim == 2:
                if batch is None:
                    batch = arr.shape[0]
                elif arr.shape[0] != batch:
                    raise ValueError("all envelopes must share one batch size")
            if h == 0:
                arr = arr.real.astype(complex)
            clean[h] = arr
        if n is None:
            raise ValueError("need at least one envelope")
        if batch is not None:
            for h, arr in clean.items():
                if arr.ndim == 1:
                    clean[h] = np.broadcast_to(arr, (batch, n))
        self.envelopes = clean
        self.sample_rate = float(sample_rate)
        self.carrier_freq = float(carrier_freq)
        self._two_sided_cache: Optional[Dict[int, np.ndarray]] = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_baseband(
        cls, wf: Waveform, carrier_freq: float
    ) -> "EnvelopeSignal":
        """Wrap a real baseband record (harmonic 0 only)."""
        return cls({0: wf.samples.astype(complex)}, wf.sample_rate, carrier_freq)

    @classmethod
    def sine_carrier(
        cls,
        n: int,
        sample_rate: float,
        carrier_freq: float,
        amplitude: float = 1.0,
        phase: Union[float, np.ndarray] = 0.0,
        offset_hz: float = 0.0,
    ) -> "EnvelopeSignal":
        """``amplitude * sin((w_c + 2 pi offset) t + phase)`` as an envelope.

        ``sin(x) = Re[-j e^{jx}]``, so the harmonic-1 envelope is
        ``-j * amplitude * exp(j (2 pi offset t + phase))``.  A nonzero
        ``offset_hz`` represents an LO slightly detuned from the carrier
        reference (Equation 5's offset-LO trick); the offset must stay
        well inside the envelope bandwidth.

        ``phase`` may be a scalar or a ``(batch, 1)`` column of per-device
        phases, which produces a batched LO whose row ``i`` equals the
        scalar-phase carrier at ``phase[i]``.
        """
        if n < 1:
            raise ValueError("n must be >= 1")
        if abs(offset_hz) >= sample_rate / 2.0:
            raise ValueError("LO offset must be below the envelope Nyquist rate")
        t = np.arange(n) / sample_rate
        env = -1j * amplitude * np.exp(1j * (2.0 * np.pi * offset_hz * t + phase))
        return cls({1: env}, sample_rate, carrier_freq)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of envelope samples (per batch row)."""
        return next(iter(self.envelopes.values())).shape[-1]

    @property
    def batch_size(self) -> Optional[int]:
        """Rows of a batched signal, or ``None`` for a single 1-D record."""
        arr = next(iter(self.envelopes.values()))
        return arr.shape[0] if arr.ndim == 2 else None

    @property
    def shape(self) -> Tuple[int, ...]:
        """Common array shape of every envelope: ``(n,)`` or ``(batch, n)``."""
        return next(iter(self.envelopes.values())).shape

    def harmonics(self) -> list:
        """Sorted harmonic indices present."""
        return sorted(self.envelopes)

    def harmonic(self, h: int) -> np.ndarray:
        """Envelope at harmonic ``h`` (zeros if absent)."""
        if h in self.envelopes:
            return self.envelopes[h]
        return np.zeros(self.shape, dtype=complex)

    def baseband(self) -> np.ndarray:
        """The real baseband component ``E_0``."""
        return self.harmonic(0).real

    def peak_passband_estimate(self) -> float:
        """Upper bound on the instantaneous passband amplitude.

        ``max_t sum_h |E_h(t)|`` -- used to check the DUT polynomial is
        not driven beyond its physical validity range.  For batched
        signals the maximum runs over every row.
        """
        total = np.zeros(self.shape)
        for h, env in self.envelopes.items():
            total += np.abs(env) if h > 0 else np.abs(env.real)
        return float(np.max(total)) if total.size else 0.0

    # ------------------------------------------------------------------
    # linear operations
    # ------------------------------------------------------------------
    def _check_compatible(self, other: "EnvelopeSignal") -> None:
        if (
            other.sample_rate != self.sample_rate
            or other.carrier_freq != self.carrier_freq
            or other.n != self.n
        ):
            raise ValueError("envelope signals are not compatible")
        ba, bb = self.batch_size, other.batch_size
        if ba is not None and bb is not None and ba != bb:
            raise ValueError("envelope signals are not compatible")

    def __add__(self, other: "EnvelopeSignal") -> "EnvelopeSignal":
        self._check_compatible(other)
        out = dict(self.envelopes)
        for h, env in other.envelopes.items():
            if h in out:
                out[h] = out[h] + env
            else:
                out[h] = env
        return EnvelopeSignal(out, self.sample_rate, self.carrier_freq)

    def scale(self, factor: Union[float, np.ndarray]) -> "EnvelopeSignal":
        """Multiply the whole signal by a real constant.

        ``factor`` may also be an array broadcastable against the
        envelopes -- e.g. a ``(batch, 1)`` column of per-device gains,
        which turns a shared 1-D signal into a batched one.
        """
        return EnvelopeSignal(
            {h: env * factor for h, env in self.envelopes.items()},
            self.sample_rate,
            self.carrier_freq,
        )

    def keep_harmonics(self, harmonics: Iterable[int]) -> "EnvelopeSignal":
        """Ideal filter: retain only the listed harmonic bands.

        Models tuned couplings (an LNA's matched input passes only the
        carrier band) and the final low-pass selection of harmonic 0.
        """
        keep = set(harmonics)
        out = {h: env for h, env in self.envelopes.items() if h in keep}
        if not out:
            out = {0: np.zeros(self.shape, dtype=complex)}
        return EnvelopeSignal(out, self.sample_rate, self.carrier_freq)

    # ------------------------------------------------------------------
    # nonlinear operations
    # ------------------------------------------------------------------
    def _two_sided(self) -> Dict[int, np.ndarray]:
        """Two-sided coefficient form ``T_h`` (see module docstring).

        Cached per instance: ``multiply`` calls this on both operands, and
        the mixers reuse the same LO / power signals across many products,
        so rebuilding the conjugate arrays every time dominated profiles.
        """
        if self._two_sided_cache is None:
            t: Dict[int, np.ndarray] = {}
            for h, env in self.envelopes.items():
                if h == 0:
                    # the constructor already coerced E_0 to real
                    t[0] = env
                else:
                    t[h] = env / 2.0
                    t[-h] = np.conj(env) / 2.0
            self._two_sided_cache = t
        return self._two_sided_cache

    @staticmethod
    def _fold(two_sided: Dict[int, np.ndarray], shape) -> Dict[int, np.ndarray]:
        """Collapse a two-sided coefficient dict back to one-sided envelopes.

        Only called on ``multiply``'s freshly accumulated products, so the
        doubling may safely run in place.
        """
        out: Dict[int, np.ndarray] = {}
        for h, coeff in two_sided.items():
            if h < 0:
                continue
            if h != 0:
                coeff *= 2.0
            out[h] = coeff
        if not out:
            out = {0: np.zeros(shape, dtype=complex)}
        return out

    def multiply(
        self, other: "EnvelopeSignal", max_harmonic: int = 12
    ) -> "EnvelopeSignal":
        """Exact product of two envelope signals.

        Convolves the two-sided harmonic coefficients; components beyond
        ``max_harmonic`` are dropped (they would be filtered by the load
        board anyway, and with cubic nonlinearities the default keeps
        everything).
        """
        self._check_compatible(other)
        a = self._two_sided()
        b = other._two_sided()
        acc: Dict[int, np.ndarray] = {}
        for ha, ea in a.items():
            for hb, eb in b.items():
                k = ha + hb
                # negative-k coefficients are conjugates of positive-k
                # ones and are dropped by the fold -- never compute them
                if k < 0 or k > max_harmonic:
                    continue
                prod = ea * eb
                if k in acc:
                    acc[k] += prod
                else:
                    acc[k] = prod
        shape = acc[0].shape if 0 in acc else self.shape
        return EnvelopeSignal(
            self._fold(acc, shape), self.sample_rate, self.carrier_freq
        )

    def power(self, exponent: int, max_harmonic: int = 12) -> "EnvelopeSignal":
        """Integer power via repeated multiplication."""
        if exponent < 1:
            raise ValueError("exponent must be >= 1")
        result = self
        for _ in range(exponent - 1):
            result = result.multiply(self, max_harmonic)
        return result

    def apply_polynomial(
        self, a1: float, a2: float, a3: float, max_harmonic: int = 12
    ) -> "EnvelopeSignal":
        """Apply ``a1 x + a2 x^2 + a3 x^3`` exactly in the envelope domain."""
        out = self.scale(a1)
        if a2 != 0.0:
            out = out + self.power(2, max_harmonic).scale(a2)
        if a3 != 0.0:
            out = out + self.power(3, max_harmonic).scale(a3)
        return out

    # ------------------------------------------------------------------
    # conversion back to sampled signals
    # ------------------------------------------------------------------
    def to_passband(self, passband_rate: float) -> Waveform:
        """Reconstruct the real passband signal at ``passband_rate``.

        Used only by validation tests; requires a rate above twice the
        highest harmonic present.  Single (1-D) signals only.
        """
        if self.batch_size is not None:
            raise ValueError("to_passband requires a single (1-D) signal")
        h_max = max(self.harmonics())
        if passband_rate < 2.0 * (h_max * self.carrier_freq + self.sample_rate / 2.0):
            raise ValueError("passband rate too low for the harmonics present")
        n_out = int(round(self.n * passband_rate / self.sample_rate))
        t_out = np.arange(n_out) / passband_rate
        t_env = np.arange(self.n) / self.sample_rate
        out = np.zeros(n_out)
        for h, env in self.envelopes.items():
            re = np.interp(t_out, t_env, env.real)
            if h == 0:
                out += re
                continue
            im = np.interp(t_out, t_env, env.imag)
            phase = 2.0 * np.pi * h * self.carrier_freq * t_out
            out += re * np.cos(phase) - im * np.sin(phase)
        return Waveform(out, passband_rate)

    def baseband_waveform(self) -> Waveform:
        """The harmonic-0 content as a real waveform (1-D signals only)."""
        return Waveform(self.baseband(), self.sample_rate)

    def filter_harmonic(self, h: int, bandwidth_hz: float) -> "EnvelopeSignal":
        """One-pole low-pass the envelope of harmonic ``h``.

        In passband terms this is a symmetric single-pole *bandpass* of
        half-width ``bandwidth_hz`` around ``h * f_c`` -- the standard
        model for a DUT whose matching network or bias circuit limits
        its modulation bandwidth.  Other harmonics pass untouched.
        """
        if not (0.0 < bandwidth_hz < self.sample_rate / 2.0):
            raise ValueError(
                f"bandwidth must lie in (0, envelope Nyquist): got "
                f"{bandwidth_hz:g} Hz with Nyquist {self.sample_rate / 2.0:g} Hz"
            )
        out = dict(self.envelopes)
        if h in out:
            out[h] = one_pole_lowpass(out[h], self.sample_rate, bandwidth_hz)
        return EnvelopeSignal(out, self.sample_rate, self.carrier_freq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        batch = "" if self.batch_size is None else f", batch={self.batch_size}"
        return (
            f"EnvelopeSignal(harmonics={self.harmonics()}, n={self.n}{batch}, "
            f"fs={self.sample_rate:.3g} Hz, fc={self.carrier_freq:.3g} Hz)"
        )
