"""Harmonic-envelope signal algebra.

Simulating the signature path at the 900 MHz carrier rate would need
multi-GHz sampling inside the genetic optimizer's fitness loop.  Instead
we represent every signal as a sum of complex envelopes on the carrier
harmonics:

    v(t) = E_0(t) + sum_{h>0} Re[ E_h(t) exp(j h w_c t) ]

with ``E_0`` real.  Multiplication of two such signals -- the only
nonlinear operation the mixers and the polynomial DUT need -- is an exact
convolution over harmonic indices:

    T_k = sum_{i+j=k} T^A_i T^B_j,

where ``T_0 = E_0``, ``T_h = E_h / 2`` and ``T_{-h} = conj(E_h) / 2`` is
the two-sided form.  Because the mixers generate at most 3rd harmonics and
the DUT polynomial is cubic, harmonic indices stay below 10 and the
algebra is exact (no truncation error for the default ``max_harmonic``).

Envelope arrays are sampled at the baseband rate, so a full signature-path
simulation costs a few hundred small array products instead of millions of
carrier-rate samples -- the math in Section 2.1 of the paper (Equations
1-5) falls out of this algebra as a special case.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from repro.dsp.waveform import Waveform

__all__ = ["EnvelopeSignal"]


class EnvelopeSignal:
    """A real signal represented by complex envelopes at carrier harmonics.

    Parameters
    ----------
    envelopes:
        Mapping of harmonic index ``h >= 0`` to a complex envelope array.
        All arrays must share one length.  ``E_0`` is coerced to real.
    sample_rate:
        Envelope sampling rate (baseband rate), Hz.
    carrier_freq:
        The carrier frequency the harmonic indices refer to, Hz.
    """

    __slots__ = ("envelopes", "sample_rate", "carrier_freq")

    def __init__(
        self,
        envelopes: Dict[int, np.ndarray],
        sample_rate: float,
        carrier_freq: float,
    ):
        if not (sample_rate > 0) or not (carrier_freq > 0):
            raise ValueError("sample_rate and carrier_freq must be positive")
        clean: Dict[int, np.ndarray] = {}
        n = None
        for h, env in envelopes.items():
            if h < 0:
                raise ValueError("harmonic indices must be >= 0 (one-sided form)")
            arr = np.asarray(env, dtype=complex)
            if arr.ndim != 1:
                raise ValueError(f"envelope {h} must be 1-D")
            if n is None:
                n = len(arr)
            elif len(arr) != n:
                raise ValueError("all envelopes must share one length")
            if h == 0:
                arr = arr.real.astype(complex)
            clean[h] = arr
        if n is None:
            raise ValueError("need at least one envelope")
        self.envelopes = clean
        self.sample_rate = float(sample_rate)
        self.carrier_freq = float(carrier_freq)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_baseband(
        cls, wf: Waveform, carrier_freq: float
    ) -> "EnvelopeSignal":
        """Wrap a real baseband record (harmonic 0 only)."""
        return cls({0: wf.samples.astype(complex)}, wf.sample_rate, carrier_freq)

    @classmethod
    def sine_carrier(
        cls,
        n: int,
        sample_rate: float,
        carrier_freq: float,
        amplitude: float = 1.0,
        phase: float = 0.0,
        offset_hz: float = 0.0,
    ) -> "EnvelopeSignal":
        """``amplitude * sin((w_c + 2 pi offset) t + phase)`` as an envelope.

        ``sin(x) = Re[-j e^{jx}]``, so the harmonic-1 envelope is
        ``-j * amplitude * exp(j (2 pi offset t + phase))``.  A nonzero
        ``offset_hz`` represents an LO slightly detuned from the carrier
        reference (Equation 5's offset-LO trick); the offset must stay
        well inside the envelope bandwidth.
        """
        if n < 1:
            raise ValueError("n must be >= 1")
        if abs(offset_hz) >= sample_rate / 2.0:
            raise ValueError("LO offset must be below the envelope Nyquist rate")
        t = np.arange(n) / sample_rate
        env = -1j * amplitude * np.exp(1j * (2.0 * np.pi * offset_hz * t + phase))
        return cls({1: env}, sample_rate, carrier_freq)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of envelope samples."""
        return len(next(iter(self.envelopes.values())))

    def harmonics(self) -> list:
        """Sorted harmonic indices present."""
        return sorted(self.envelopes)

    def harmonic(self, h: int) -> np.ndarray:
        """Envelope at harmonic ``h`` (zeros if absent)."""
        if h in self.envelopes:
            return self.envelopes[h]
        return np.zeros(self.n, dtype=complex)

    def baseband(self) -> np.ndarray:
        """The real baseband component ``E_0``."""
        return self.harmonic(0).real

    def peak_passband_estimate(self) -> float:
        """Upper bound on the instantaneous passband amplitude.

        ``max_t sum_h |E_h(t)|`` -- used to check the DUT polynomial is
        not driven beyond its physical validity range.
        """
        total = np.zeros(self.n)
        for h, env in self.envelopes.items():
            total += np.abs(env) if h > 0 else np.abs(env.real)
        return float(np.max(total)) if self.n else 0.0

    # ------------------------------------------------------------------
    # linear operations
    # ------------------------------------------------------------------
    def _check_compatible(self, other: "EnvelopeSignal") -> None:
        if (
            other.sample_rate != self.sample_rate
            or other.carrier_freq != self.carrier_freq
            or other.n != self.n
        ):
            raise ValueError("envelope signals are not compatible")

    def __add__(self, other: "EnvelopeSignal") -> "EnvelopeSignal":
        self._check_compatible(other)
        out = {h: env.copy() for h, env in self.envelopes.items()}
        for h, env in other.envelopes.items():
            if h in out:
                out[h] = out[h] + env
            else:
                out[h] = env.copy()
        return EnvelopeSignal(out, self.sample_rate, self.carrier_freq)

    def scale(self, factor: float) -> "EnvelopeSignal":
        """Multiply the whole signal by a real constant."""
        return EnvelopeSignal(
            {h: env * factor for h, env in self.envelopes.items()},
            self.sample_rate,
            self.carrier_freq,
        )

    def keep_harmonics(self, harmonics: Iterable[int]) -> "EnvelopeSignal":
        """Ideal filter: retain only the listed harmonic bands.

        Models tuned couplings (an LNA's matched input passes only the
        carrier band) and the final low-pass selection of harmonic 0.
        """
        keep = set(harmonics)
        out = {h: env.copy() for h, env in self.envelopes.items() if h in keep}
        if not out:
            out = {0: np.zeros(self.n, dtype=complex)}
        return EnvelopeSignal(out, self.sample_rate, self.carrier_freq)

    # ------------------------------------------------------------------
    # nonlinear operations
    # ------------------------------------------------------------------
    def _two_sided(self) -> Dict[int, np.ndarray]:
        """Two-sided coefficient form ``T_h`` (see module docstring)."""
        t: Dict[int, np.ndarray] = {}
        for h, env in self.envelopes.items():
            if h == 0:
                t[0] = env.real.astype(complex)
            else:
                t[h] = env / 2.0
                t[-h] = np.conj(env) / 2.0
        return t

    @staticmethod
    def _fold(two_sided: Dict[int, np.ndarray], n: int) -> Dict[int, np.ndarray]:
        """Collapse a two-sided coefficient dict back to one-sided envelopes."""
        out: Dict[int, np.ndarray] = {}
        for h, coeff in two_sided.items():
            if h < 0:
                continue
            out[h] = coeff if h == 0 else 2.0 * coeff
        if not out:
            out = {0: np.zeros(n, dtype=complex)}
        return out

    def multiply(
        self, other: "EnvelopeSignal", max_harmonic: int = 12
    ) -> "EnvelopeSignal":
        """Exact product of two envelope signals.

        Convolves the two-sided harmonic coefficients; components beyond
        ``max_harmonic`` are dropped (they would be filtered by the load
        board anyway, and with cubic nonlinearities the default keeps
        everything).
        """
        self._check_compatible(other)
        a = self._two_sided()
        b = other._two_sided()
        acc: Dict[int, np.ndarray] = {}
        for ha, ea in a.items():
            for hb, eb in b.items():
                k = ha + hb
                if abs(k) > max_harmonic:
                    continue
                prod = ea * eb
                if k in acc:
                    acc[k] += prod
                else:
                    acc[k] = prod.copy()
        return EnvelopeSignal(
            self._fold(acc, self.n), self.sample_rate, self.carrier_freq
        )

    def power(self, exponent: int, max_harmonic: int = 12) -> "EnvelopeSignal":
        """Integer power via repeated multiplication."""
        if exponent < 1:
            raise ValueError("exponent must be >= 1")
        result = self
        for _ in range(exponent - 1):
            result = result.multiply(self, max_harmonic)
        return result

    def apply_polynomial(
        self, a1: float, a2: float, a3: float, max_harmonic: int = 12
    ) -> "EnvelopeSignal":
        """Apply ``a1 x + a2 x^2 + a3 x^3`` exactly in the envelope domain."""
        out = self.scale(a1)
        if a2 != 0.0:
            out = out + self.power(2, max_harmonic).scale(a2)
        if a3 != 0.0:
            out = out + self.power(3, max_harmonic).scale(a3)
        return out

    # ------------------------------------------------------------------
    # conversion back to sampled signals
    # ------------------------------------------------------------------
    def to_passband(self, passband_rate: float) -> Waveform:
        """Reconstruct the real passband signal at ``passband_rate``.

        Used only by validation tests; requires a rate above twice the
        highest harmonic present.
        """
        h_max = max(self.harmonics())
        if passband_rate < 2.0 * (h_max * self.carrier_freq + self.sample_rate / 2.0):
            raise ValueError("passband rate too low for the harmonics present")
        n_out = int(round(self.n * passband_rate / self.sample_rate))
        t_out = np.arange(n_out) / passband_rate
        t_env = np.arange(self.n) / self.sample_rate
        out = np.zeros(n_out)
        for h, env in self.envelopes.items():
            re = np.interp(t_out, t_env, env.real)
            if h == 0:
                out += re
                continue
            im = np.interp(t_out, t_env, env.imag)
            phase = 2.0 * np.pi * h * self.carrier_freq * t_out
            out += re * np.cos(phase) - im * np.sin(phase)
        return Waveform(out, passband_rate)

    def baseband_waveform(self) -> Waveform:
        """The harmonic-0 content as a real waveform."""
        return Waveform(self.baseband(), self.sample_rate)

    def filter_harmonic(self, h: int, bandwidth_hz: float) -> "EnvelopeSignal":
        """One-pole low-pass the envelope of harmonic ``h``.

        In passband terms this is a symmetric single-pole *bandpass* of
        half-width ``bandwidth_hz`` around ``h * f_c`` -- the standard
        model for a DUT whose matching network or bias circuit limits
        its modulation bandwidth.  Other harmonics pass untouched.
        """
        if not (0.0 < bandwidth_hz < self.sample_rate / 2.0):
            raise ValueError("bandwidth must lie in (0, envelope Nyquist)")
        out = {k: env.copy() for k, env in self.envelopes.items()}
        if h in out:
            env = out[h]
            # bilinear-transform one-pole on the complex envelope
            import math

            wc = 2.0 * self.sample_rate * math.tan(
                math.pi * bandwidth_hz / self.sample_rate
            )
            k = 2.0 * self.sample_rate
            b0 = wc / (k + wc)
            a1 = (wc - k) / (k + wc)
            y = np.empty_like(env)
            prev_x = 0.0 + 0.0j
            prev_y = 0.0 + 0.0j
            for i, x in enumerate(env):
                y[i] = b0 * (x + prev_x) - a1 * prev_y
                prev_x = x
                prev_y = y[i]
            out[h] = y
        return EnvelopeSignal(out, self.sample_rate, self.carrier_freq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"EnvelopeSignal(harmonics={self.harmonics()}, n={self.n}, "
            f"fs={self.sample_rate:.3g} Hz, fc={self.carrier_freq:.3g} Hz)"
        )
