"""The signature test path: stimulus -> mixer -> DUT -> mixer -> LPF -> ADC.

Implements the configurations of Figures 2 and 3 of the paper:

* **Basic configuration** (Figure 2): both mixers driven from the same
  carrier.  A path phase mismatch ``phi`` scales the signature by
  ``cos(phi)`` (Equation 4) and can null it completely.
* **Modified configuration** (Figure 3): the second LO is offset by
  ``lo_offset_hz`` (Equation 5) and the FFT *magnitude* of the captured
  record is used as the signature, which removes the phase dependence.

The simulation runs in the harmonic-envelope domain
(:mod:`repro.loadboard.envelope`), which reproduces the passband physics
exactly for the cubic mixers/DUT while sampling only at baseband rates.

Batched capture
---------------
Everything upstream of the DUT -- the rendered stimulus, the first LO,
the mixer-1 upconversion and its harmonic powers, and (for a fixed path
phase) the second LO -- depends only on ``(stimulus, config)``, never on
the device.  :class:`CapturePlan` precomputes that front half once and
:meth:`SignatureTestBoard.capture_batch` /
:meth:`SignatureTestBoard.signature_batch` run the device-dependent back
half as single ``(batch, n)`` NumPy operations over a whole device lot.
Per-device RNG streams are spawned exactly like the executor layer's
(:func:`repro.runtime.executor.spawn_generators`), and every vectorized
step is elementwise along the record axis, so batched results are
bit-identical to the one-device-at-a-time path -- :meth:`capture` itself
is a batch of one.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.circuits.device import RFDevice
from repro.circuits.noisefig import added_output_noise_vrms
from repro.circuits.nonlinear import PolynomialNonlinearity
from repro.dsp.filters import ButterworthLowpass
from repro.dsp.mixer import Mixer
from repro.dsp.sources import dbm_to_vpeak
from repro.dsp.spectral import (
    fft_magnitude_signature,
    fft_magnitude_signature_matrix,
)
from repro.dsp.units import undb20
from repro.dsp.waveform import PiecewiseLinearStimulus, Waveform
from repro.instruments.digitizer import BasebandDigitizer
from repro.loadboard.capture_compiler import (
    CompiledCaptureProgram,
    FastPathError,
    reduction_drops_content,
    trace_mixer_baseband,
)
from repro.loadboard.envelope import EnvelopeSignal, one_pole_lowpass

__all__ = [
    "CapturePlan",
    "FastPathError",
    "SignaturePathConfig",
    "SignatureTestBoard",
    "mix_envelope",
    "resolve_rng_streams",
    "simulation_config",
    "hardware_config",
]

RngList = Sequence[Optional[np.random.Generator]]


def resolve_rng_streams(
    rng: Optional[np.random.Generator],
    rngs: Optional[RngList],
    n_devices: int,
) -> List[Optional[np.random.Generator]]:
    """Per-device generators: explicit list, spawned from ``rng``, or None.

    The one spawning rule every board front end shares: explicit ``rngs``
    pass through unchanged, a master ``rng`` spawns one independent
    stream per device exactly like
    :func:`repro.runtime.executor.spawn_generators`, and ``None``
    disables measurement noise.
    """
    if rngs is not None:
        if rng is not None:
            raise ValueError("pass either rng or rngs, not both")
        rngs = list(rngs)
        if len(rngs) != n_devices:
            raise ValueError("need one rng (or None) per device")
        return rngs
    if rng is None:
        return [None] * n_devices
    # local import: repro.runtime's package __init__ imports modules
    # that import this one
    from repro.runtime.executor import spawn_generators

    return spawn_generators(rng, n_devices)


def mix_envelope(
    mixer: Mixer,
    rf: EnvelopeSignal,
    lo: EnvelopeSignal,
    max_harmonic: int = 12,
    lo_powers: Optional[Dict[int, EnvelopeSignal]] = None,
) -> EnvelopeSignal:
    """Apply a behavioral mixer's cross-product table in the envelope domain.

    Same model as :meth:`repro.dsp.mixer.Mixer.mix`, but operating on
    :class:`EnvelopeSignal` operands:  ``out = g * sum c_mn rf^m lo^n``.

    ``lo_powers`` memoizes the LO power chain ``{1: lo, 2: lo^2, ...}``
    across calls that reuse the same LO (the cached capture plan passes
    its own dict); missing powers are computed and stored into it.
    """
    max_m = max(m for m, _ in mixer.harmonics.coeffs)
    max_n = max(n for _, n in mixer.harmonics.coeffs)
    rf_pows = {1: rf}
    lo_pows = lo_powers if lo_powers is not None else {1: lo}
    for p in range(2, max_m + 1):
        rf_pows[p] = rf_pows[p - 1].multiply(rf, max_harmonic)
    for p in range(2, max_n + 1):
        if p not in lo_pows:
            lo_pows[p] = lo_pows[p - 1].multiply(lo, max_harmonic)
    out: Optional[EnvelopeSignal] = None
    for (m, n), c in mixer.harmonics.coeffs.items():
        term = rf_pows[m].multiply(lo_pows[n], max_harmonic).scale(c)
        out = term if out is None else out + term
    if out is None:
        raise ValueError("mixer harmonics table is empty; nothing to mix")
    return out.scale(mixer.conversion_gain)


@dataclass
class SignaturePathConfig:
    """Everything that defines one signature-test setup.

    Attributes mirror the hardware: carrier source, the two load-board
    mixers, LPF, digitizer, and the DUT coupling style.

    ``dut_coupling`` is ``"tuned"`` for narrowband DUTs (an LNA's matched
    input/output pass only the carrier band) or ``"wideband"`` for DUTs
    that pass all products.

    lint-ranges: carrier_power_dbm=[-30, 30] capture_seconds=[1e-7, 1e-3]
    lint-ranges: setup_time=[0, 1] digitizer_noise_vrms=[0, 1]
    lint-ranges: input_loss_db=[0, 40] output_loss_db=[0, 40]
    """

    carrier_freq: float = 900e6
    carrier_power_dbm: float = 10.0
    lo_offset_hz: float = 0.0
    path_phase_rad: float = 0.0
    random_path_phase: bool = False
    mixer1: Mixer = field(default_factory=lambda: Mixer(conversion_gain=0.5))
    mixer2: Mixer = field(default_factory=lambda: Mixer(conversion_gain=0.5))
    lpf_order: int = 5
    lpf_cutoff_hz: float = 10e6
    digitizer_rate: float = 20e6
    digitizer_noise_vrms: float = 1e-3
    digitizer_bits: Optional[int] = None
    capture_seconds: float = 5e-6
    envelope_oversample: int = 4
    dut_coupling: str = "tuned"
    include_device_noise: bool = True
    max_harmonic: int = 12
    #: fixture losses between the board and the DUT ports, in dB --
    #: nonzero for probe cards (wafer-level test) or lossy sockets
    input_loss_db: float = 0.0
    output_loss_db: float = 0.0
    #: low-cost tester overhead per insertion (single configuration,
    #: Section 2 advantage 2: no per-test setup)
    setup_time: float = 0.010

    def __post_init__(self):
        if self.dut_coupling not in ("tuned", "wideband"):
            raise ValueError("dut_coupling must be 'tuned' or 'wideband'")
        if self.input_loss_db < 0 or self.output_loss_db < 0:
            raise ValueError("fixture losses must be non-negative dB")
        if self.envelope_oversample < 1:
            raise ValueError("envelope_oversample must be >= 1")
        if not (0 < self.lpf_cutoff_hz < self.digitizer_rate):
            raise ValueError("LPF cutoff must be positive and near the capture band")
        if abs(self.lo_offset_hz) >= self.engine_rate / 2.0:
            raise ValueError("LO offset exceeds the envelope bandwidth")

    @property
    def engine_rate(self) -> float:
        """Internal envelope simulation rate."""
        return self.envelope_oversample * self.digitizer_rate

    @property
    def carrier_amplitude(self) -> float:
        """Carrier peak amplitude in volts."""
        return dbm_to_vpeak(self.carrier_power_dbm)

    def total_test_time(self) -> float:
        """Tester seconds for one signature insertion."""
        return self.setup_time + self.capture_seconds


@dataclass
class CapturePlan:
    """The device-independent front half of a signature capture.

    Everything here depends only on ``(stimulus, config)``: the stimulus
    record rendered at the engine rate, the mixer-1 upconversion (with
    fixture input loss applied), the coupled DUT drive and its cached
    derived quantities, and -- when the path phase is fixed -- the second
    LO envelope.  A batch of N devices reuses one plan instead of paying
    the front half N times.
    """

    #: stimulus rendered at the engine rate, padded/truncated to the capture
    record: Waveform
    #: mixer-1 output after fixture input loss
    upconverted: EnvelopeSignal
    #: the drive the DUT sees (carrier band only for tuned coupling)
    dut_in: EnvelopeSignal
    #: peak drive estimate used for overdrive bookkeeping
    peak: float
    #: tuned coupling: carrier-band drive envelope and its magnitude
    u1: Optional[np.ndarray] = None
    amps: Optional[np.ndarray] = None
    #: wideband coupling: cached powers of the drive for the cubic DUT
    dut_in_sq: Optional[EnvelopeSignal] = None
    dut_in_cube: Optional[EnvelopeSignal] = None
    #: second LO at the fixed path phase (None when the phase is random)
    lo2: Optional[EnvelopeSignal] = None
    #: memoized LO2 power chain for mixer 2 (mutated by ``mix_envelope``)
    lo2_pows: Optional[Dict[int, EnvelopeSignal]] = None
    #: compiled mixer-2 programs keyed (precision, max_harmonic, rf keys)
    programs: Dict[tuple, CompiledCaptureProgram] = field(default_factory=dict)
    #: memoized fast-path refusal verdicts keyed (rf keys, ceiling)
    fast_refusals: Dict[tuple, bool] = field(default_factory=dict)

    @property
    def n(self) -> int:
        """Engine-rate record length."""
        return len(self.record)

    def nbytes(self) -> int:
        """Approximate retained bytes: envelopes, arrays, and programs.

        Drives the board's plan-cache memory bound; compiled-program
        workspaces dominate for large lots, and they are the first thing
        the bound evicts (:meth:`release_workspaces`).
        """
        def env_bytes(env: Optional[EnvelopeSignal]) -> int:
            if env is None:
                return 0
            return sum(np.asarray(e).nbytes for e in env.envelopes.values())

        total = self.record.samples.nbytes
        for env in (
            self.upconverted,
            self.dut_in,
            self.dut_in_sq,
            self.dut_in_cube,
            self.lo2,
        ):
            total += env_bytes(env)
        for env in (self.lo2_pows or {}).values():
            total += env_bytes(env)
        for arr in (self.u1, self.amps):
            if arr is not None:
                total += np.asarray(arr).nbytes
        for program in self.programs.values():
            total += program.nbytes()
        return total

    def release_workspaces(self) -> None:
        """Drop compiled-program workspaces (kept plans stay usable)."""
        for program in self.programs.values():
            program.release_workspaces()


class SignatureTestBoard:
    """Simulates one capture through the load board of Figure 2/3.

    After every capture, :attr:`last_overdrive_ratio` records the DUT
    input peak relative to the device polynomial's saturation amplitude.
    Ratios approaching 1 mean the cubic model is leaving its physical
    validity range; the stimulus optimizer penalizes such drive levels.
    """

    #: distinct (stimulus, config) plans kept per board (LRU)
    _plan_cache_size = 8
    #: byte budget for cached plans + compiled programs + workspaces;
    #: over-budget caches first shed LRU workspaces, then whole plans
    _plan_cache_max_bytes = 64 * 1024 * 1024
    #: capture engine used by :meth:`signature_batch` when none is named
    default_engine = "compiled"
    #: harmonic ceiling of the reduced fast path (``engine="fast"``)
    fast_harmonic_cutoff = 6

    def __init__(self, config: SignaturePathConfig):
        self.config = config
        self._lpf = ButterworthLowpass(
            config.lpf_order, config.lpf_cutoff_hz, config.engine_rate
        )
        self._digitizer = BasebandDigitizer(
            sample_rate=config.digitizer_rate,
            bits=config.digitizer_bits,
            noise_vrms=config.digitizer_noise_vrms,
        )
        #: peak DUT drive / saturation amplitude of the last capture
        #: (the batch maximum for a batched capture)
        self.last_overdrive_ratio: float = 0.0
        #: per-device overdrive ratios of the last (batched) capture
        self.last_overdrive_ratios: np.ndarray = np.zeros(0)
        #: per-stage wall-clock breakdown of the last compiled capture
        self.last_stage_seconds: Dict[str, float] = {}
        self._plan_cache: "OrderedDict[tuple, CapturePlan]" = OrderedDict()
        #: guards the plan cache and the last-capture telemetry above:
        #: thread executors share one board across concurrent captures
        self._state_lock = threading.Lock()

    def __getstate__(self):
        # the plan cache can hold megabytes of envelopes; rebuilding it
        # in a worker is cheaper than pickling it across every task
        state = self.__dict__.copy()
        state["_plan_cache"] = OrderedDict()
        del state["_state_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._state_lock = threading.Lock()

    # ------------------------------------------------------------------
    # stimulus handling
    # ------------------------------------------------------------------
    def _stimulus_record(
        self, stimulus: Union[Waveform, PiecewiseLinearStimulus]
    ) -> Waveform:
        """Render the stimulus at the engine rate, padded to the capture.

        Accepts a raw :class:`Waveform` or any stimulus object exposing
        ``to_waveform(sample_rate)`` (PWL, multitone, ...).
        """
        cfg = self.config
        if hasattr(stimulus, "to_waveform"):
            wf = stimulus.to_waveform(cfg.engine_rate)
        else:
            wf = stimulus
            if wf.sample_rate != cfg.engine_rate:
                wf = wf.resample(cfg.engine_rate)
        n_needed = int(round(cfg.capture_seconds * cfg.engine_rate))
        if len(wf) < n_needed:
            wf = wf.pad_to(n_needed)
        elif len(wf) > n_needed:
            wf = Waveform(wf.samples[:n_needed], cfg.engine_rate, wf.t0)
        return wf

    # ------------------------------------------------------------------
    # the cached device-independent front half
    # ------------------------------------------------------------------
    def capture_plan(
        self, stimulus: Union[Waveform, PiecewiseLinearStimulus]
    ) -> CapturePlan:
        """The (cached) device-independent front half for this stimulus.

        Keyed on the rendered record's bytes, so value-equal stimuli of
        any type (PWL, multitone, raw waveform) share one plan.  An LRU
        of :attr:`_plan_cache_size` plans is kept per board -- enough for
        a finite-difference star (nominal plus per-parameter steps uses
        one plan each) while bounding memory.
        """
        record = self._stimulus_record(stimulus)
        key = (record.sample_rate, record.t0, record.samples.tobytes())
        with self._state_lock:
            plan = self._plan_cache.get(key)
            if plan is not None:
                self._plan_cache.move_to_end(key)
                return plan
        # build outside the lock: concurrent first captures may build
        # the same plan twice, but neither stalls behind the other
        plan = self._build_plan(record)
        with self._state_lock:
            winner = self._plan_cache.get(key)
            if winner is not None:
                self._plan_cache.move_to_end(key)
                return winner
            self._plan_cache[key] = plan
            while len(self._plan_cache) > self._plan_cache_size:
                self._plan_cache.popitem(last=False)
            self._enforce_plan_cache_bytes()
        return plan

    def _enforce_plan_cache_bytes(self) -> None:
        """Shrink the plan cache under :attr:`_plan_cache_max_bytes`.

        Cheapest reclaim first: compiled-program workspaces of the
        least-recently-used plans (they rebuild lazily), then whole LRU
        plans.  The most recent plan always survives, workspaces intact,
        so the active lot never loses its steady-state buffers.  The
        caller must hold :attr:`_state_lock`.
        """
        def total() -> int:
            return sum(p.nbytes() for p in self._plan_cache.values())

        if total() <= self._plan_cache_max_bytes:
            return
        plans = list(self._plan_cache.values())
        for plan in plans[:-1]:  # LRU first, never the active plan
            plan.release_workspaces()
            if total() <= self._plan_cache_max_bytes:
                return
        while len(self._plan_cache) > 1 and total() > self._plan_cache_max_bytes:
            self._plan_cache.popitem(last=False)

    def clear_plan_cache(self) -> None:
        """Drop all cached capture plans (each rebuilds on next use)."""
        with self._state_lock:
            self._plan_cache.clear()

    def _build_plan(self, record: Waveform) -> CapturePlan:
        cfg = self.config
        n = len(record)
        rf_in = EnvelopeSignal.from_baseband(record, cfg.carrier_freq)
        lo1 = EnvelopeSignal.sine_carrier(
            n,
            cfg.engine_rate,
            cfg.carrier_freq,
            amplitude=cfg.carrier_amplitude,
            phase=0.0,
        )
        upconverted = mix_envelope(cfg.mixer1, rf_in, lo1, cfg.max_harmonic)
        if cfg.input_loss_db > 0.0:
            upconverted = upconverted.scale(undb20(-cfg.input_loss_db))

        u1 = amps = None
        dut_in_sq = dut_in_cube = None
        if cfg.dut_coupling == "tuned":
            dut_in = upconverted.keep_harmonics([1])
            u1 = dut_in.harmonic(1)
            amps = np.abs(u1)
            peak = float(amps.max()) if len(amps) else 0.0
        else:
            dut_in = upconverted
            peak = dut_in.peak_passband_estimate()
            dut_in_sq = dut_in.power(2, cfg.max_harmonic)
            dut_in_cube = dut_in_sq.multiply(dut_in, cfg.max_harmonic)

        lo2 = None
        if not cfg.random_path_phase:
            lo2 = EnvelopeSignal.sine_carrier(
                n,
                cfg.engine_rate,
                cfg.carrier_freq,
                amplitude=cfg.carrier_amplitude,
                phase=cfg.path_phase_rad,
                offset_hz=cfg.lo_offset_hz,
            )
        return CapturePlan(
            record=record,
            upconverted=upconverted,
            dut_in=dut_in,
            peak=peak,
            u1=u1,
            amps=amps,
            dut_in_sq=dut_in_sq,
            dut_in_cube=dut_in_cube,
            lo2=lo2,
            lo2_pows={1: lo2} if lo2 is not None else None,
        )

    # ------------------------------------------------------------------
    # the device-dependent back half (vectorized over the batch)
    # ------------------------------------------------------------------
    def _dut_response_batch(
        self, plan: CapturePlan, devices: Sequence[RFDevice]
    ) -> EnvelopeSignal:
        """DUT outputs for a batch: one ``(batch, n)`` envelope signal.

        Row ``i`` is bit-identical to pushing ``plan.dut_in`` through
        device ``i`` alone; also updates the overdrive bookkeeping.
        """
        cfg = self.config
        polys = [PolynomialNonlinearity(*d.envelope_poly()) for d in devices]
        peak = plan.peak
        ratios = [
            peak / p.saturation_amplitude
            if np.isfinite(p.saturation_amplitude)
            else 0.0
            for p in polys
        ]
        with self._state_lock:
            # one atomic pair: a reader never sees ratios from one
            # capture next to the scalar peak of another
            self.last_overdrive_ratios = np.asarray(ratios)
            self.last_overdrive_ratio = float(max(ratios)) if ratios else 0.0

        if cfg.dut_coupling == "tuned":
            # Narrowband DUT: only the carrier band reaches the
            # nonlinearity, so the describing function of the *saturating*
            # transfer is exact -- physical gain compression at any drive,
            # without the raw cubic's fold-back.  The per-device gain
            # tables interpolate the shared |u1| record; the whole batch
            # then multiplies u1 in one operation.
            gain = np.empty((len(polys), plan.amps.shape[-1]))
            if peak > 0.0:
                for i, poly in enumerate(polys):
                    grid, table = poly.describing_gain_table(1.01 * peak)
                    gain[i] = np.interp(plan.amps, grid, table)
            else:
                for i, poly in enumerate(polys):
                    gain[i] = np.full_like(plan.amps, poly.a1, dtype=float)
            return EnvelopeSignal(
                {1: gain * plan.u1},
                plan.dut_in.sample_rate,
                plan.dut_in.carrier_freq,
            )

        # Wideband DUT: every product reaches the polynomial.  Only
        # valid below the fold-back point; the optimizer's drive
        # penalty keeps stimuli inside that range.  The drive powers
        # come precomputed from the plan; per-device coefficients enter
        # as (batch, 1) columns.
        a1_col = np.array([p.a1 for p in polys])[:, None]
        a2s = np.array([p.a2 for p in polys])
        a3s = np.array([p.a3 for p in polys])
        out = plan.dut_in.scale(a1_col)
        if np.any(a2s != 0.0):
            out = out + plan.dut_in_sq.scale(a2s[:, None])
        if np.any(a3s != 0.0):
            out = out + plan.dut_in_cube.scale(a3s[:, None])
        return out

    def _resolve_rngs(
        self,
        rng: Optional[np.random.Generator],
        rngs: Optional[RngList],
        n_devices: int,
    ) -> List[Optional[np.random.Generator]]:
        """Per-device generators: explicit list, spawned from ``rng``, or None."""
        return resolve_rng_streams(rng, rngs, n_devices)

    def _reference_front_matrix(
        self,
        devices: Sequence[RFDevice],
        stimulus: Union[Waveform, PiecewiseLinearStimulus],
        gens: RngList,
    ) -> np.ndarray:
        """Filtered baseband for a batch, stopping short of the digitizer.

        The uncompiled analog front half of :meth:`_capture_batch_matrix`:
        plan, DUT response, fixture output loss, device noise, mixer-2
        downconversion and the anti-alias LPF.  Multi-site boards couple
        these rows (shared baseband routing into the shared digitizer)
        before handing them to :meth:`digitize_matrix`.
        """
        cfg = self.config
        plan = self.capture_plan(stimulus)
        n = plan.n
        dut_out = self._dut_response_batch(plan, devices)
        dut_out = self._envelope_bandwidth_batch(dut_out, devices)

        if cfg.output_loss_db > 0.0:
            dut_out = dut_out.scale(undb20(-cfg.output_loss_db))

        if cfg.include_device_noise and any(g is not None for g in gens):
            dut_out = self._add_device_noise_batch(dut_out, devices, gens)

        if cfg.random_path_phase:
            if any(g is None for g in gens):
                raise ValueError("random_path_phase requires an rng")
            phases = np.array(
                [cfg.path_phase_rad + g.uniform(0.0, 2.0 * np.pi) for g in gens]
            )
            lo2 = EnvelopeSignal.sine_carrier(
                n,
                cfg.engine_rate,
                cfg.carrier_freq,
                amplitude=cfg.carrier_amplitude,
                phase=phases[:, None],
                offset_hz=cfg.lo_offset_hz,
            )
            lo2_pows = None
        else:
            lo2 = plan.lo2
            lo2_pows = plan.lo2_pows
        downconverted = mix_envelope(
            cfg.mixer2, dut_out, lo2, cfg.max_harmonic, lo_powers=lo2_pows
        )

        baseband = downconverted.keep_harmonics([0]).baseband()
        return self._lpf.apply_fft_matrix(baseband)

    def digitize_matrix(self, filtered: np.ndarray, gens: RngList) -> np.ndarray:
        """Digitize filtered-baseband rows: jitter, resample, noise, quantize.

        The back half shared by every engine; row ``i`` draws its
        digitizer noise from ``gens[i]``.
        """
        cfg = self.config
        return self._digitizer.capture_matrix(
            filtered, cfg.engine_rate, cfg.capture_seconds, gens
        )

    def filtered_baseband_matrix(
        self,
        devices: Sequence[RFDevice],
        stimulus: Union[Waveform, PiecewiseLinearStimulus],
        rng: Optional[np.random.Generator] = None,
        *,
        rngs: Optional[RngList] = None,
        engine: Optional[str] = None,
    ) -> Tuple[np.ndarray, List[Optional[np.random.Generator]]]:
        """The analog front half for a batch: ``(filtered, gens)``.

        ``filtered`` is the ``(batch, n)`` LPF output at the engine rate;
        ``gens`` are the per-device generators with the analog-stage
        draws (path phase, device noise) already consumed, ready for
        :meth:`digitize_matrix`.  Splitting the capture here lets
        :class:`~repro.loadboard.sites.MultiSiteBoard` inject site-to-site
        crosstalk between the per-site front ends and the shared
        digitizer while every stage stays bit-identical to this board's
        own :meth:`signature_batch`.
        """
        engine = engine or self.default_engine
        devices = list(devices)
        gens = self._resolve_rngs(rng, rngs, len(devices))
        if engine == "reference":
            return self._reference_front_matrix(devices, stimulus, gens), gens
        if engine == "compiled":
            filtered, program = self._compiled_front_matrix(
                devices, stimulus, gens
            )
        elif engine == "fast":
            filtered, program = self._compiled_front_matrix(
                devices, stimulus, gens, precision="float32"
            )
        else:
            raise ValueError(
                f"unknown capture engine {engine!r}; "
                "expected 'compiled', 'reference', or 'fast'"
            )
        with self._state_lock:
            self.last_stage_seconds = dict(program.last_stage_seconds)
        return filtered, gens

    def _capture_batch_matrix(
        self,
        devices: Sequence[RFDevice],
        stimulus: Union[Waveform, PiecewiseLinearStimulus],
        rng: Optional[np.random.Generator],
        rngs: Optional[RngList],
    ) -> np.ndarray:
        """Digitized records for a device batch as a ``(batch, n)`` matrix."""
        gens = self._resolve_rngs(rng, rngs, len(devices))
        filtered = self._reference_front_matrix(devices, stimulus, gens)
        return self.digitize_matrix(filtered, gens)

    def _envelope_bandwidth_batch(
        self, dut_out: EnvelopeSignal, devices: Sequence[RFDevice]
    ) -> EnvelopeSignal:
        """DUT envelope dynamics: a finite modulation bandwidth low-passes
        the carrier-band envelope (tuned coupling only -- a wideband DUT
        with memory is outside this model's scope)."""
        cfg = self.config
        bws = [getattr(d, "envelope_bandwidth", None) for d in devices]
        if cfg.dut_coupling != "tuned" or not any(bw is not None for bw in bws):
            return dut_out
        env1 = dut_out.harmonic(1)
        filtered_env = np.array(env1, copy=True)
        groups: Dict[float, List[int]] = {}
        for i, bw in enumerate(bws):
            if bw is not None:
                groups.setdefault(bw, []).append(i)
        for bw, idx in groups.items():
            filtered_env[idx] = one_pole_lowpass(env1[idx], dut_out.sample_rate, bw)
        envs = dict(dut_out.envelopes)
        envs[1] = filtered_env
        return EnvelopeSignal(envs, dut_out.sample_rate, dut_out.carrier_freq)

    # ------------------------------------------------------------------
    # the compiled whole-lot engine
    # ------------------------------------------------------------------
    def _compiled_program(
        self, plan: CapturePlan, rf_keys: tuple, precision: str
    ) -> CompiledCaptureProgram:
        """The (plan-cached) compiled mixer-2 program for this rf shape.

        Exact mode traces at the configured ``max_harmonic``; the
        float32 fast path traces at :attr:`fast_harmonic_cutoff` and
        *refuses* (:class:`FastPathError`) when that ceiling would drop
        populated content -- detected structurally, so truncated
        intermediate powers that feed baseband count as drops too.
        """
        cfg = self.config
        max_h = cfg.max_harmonic
        if precision == "float32":
            ceiling = min(cfg.max_harmonic, self.fast_harmonic_cutoff)
            refusal_key = (rf_keys, ceiling)
            drops = plan.fast_refusals.get(refusal_key)
            if drops is None:
                drops = reduction_drops_content(
                    cfg.mixer2, rf_keys, (1,), cfg.max_harmonic, ceiling
                )
                plan.fast_refusals[refusal_key] = drops
            if drops:
                raise FastPathError(
                    f"fast path refused: stimulus populates harmonics whose "
                    f"mixer products feed the signature above the reduction "
                    f"ceiling {ceiling} (rf harmonics {list(rf_keys)}); use "
                    f"the exact engine or raise fast_harmonic_cutoff"
                )
            max_h = ceiling
        key = (precision, max_h, rf_keys, cfg.random_path_phase)
        with self._state_lock:
            program = plan.programs.get(key)
        if program is None:
            # compile outside the lock (tracing + constant folding is
            # the expensive part); first publication wins
            tape, out = trace_mixer_baseband(cfg.mixer2, rf_keys, (1,), max_h)
            const_inputs = None
            if not cfg.random_path_phase:
                const_inputs = {("lo", 1): np.asarray(plan.lo2.envelopes[1])}
            program = CompiledCaptureProgram(
                tape, out, const_inputs=const_inputs, precision=precision
            )
            with self._state_lock:
                winner = plan.programs.get(key)
                if winner is not None:
                    return winner
                plan.programs[key] = program
                self._enforce_plan_cache_bytes()
        return program

    def _compiled_front_matrix(
        self,
        devices: Sequence[RFDevice],
        stimulus: Union[Waveform, PiecewiseLinearStimulus],
        gens: RngList,
        precision: str = "float64",
    ) -> Tuple[np.ndarray, CompiledCaptureProgram]:
        """Compiled analog front half: ``(filtered, program)``.

        Identical pipeline to :meth:`_reference_front_matrix` except the
        mixer-2 downconversion runs as the compiled op tape: exact mode
        (``precision="float64"``) is bit-identical, the float32 fast
        path stays inside :func:`fast_path_error_bound` and upcasts to
        float64 before the filter/digitizer (quantization unchanged).
        Per-stage wall times accumulate on the returned program; the
        caller publishes them to :attr:`last_stage_seconds`.
        """
        cfg = self.config
        t_start = time.perf_counter()
        plan = self.capture_plan(stimulus)
        t_plan = time.perf_counter() - t_start
        n = plan.n

        t_start = time.perf_counter()
        dut_out = self._dut_response_batch(plan, devices)
        dut_out = self._envelope_bandwidth_batch(dut_out, devices)
        if cfg.output_loss_db > 0.0:
            dut_out = dut_out.scale(undb20(-cfg.output_loss_db))
        t_nonlin = time.perf_counter() - t_start

        t_start = time.perf_counter()
        if cfg.include_device_noise and any(g is not None for g in gens):
            dut_out = self._add_device_noise_batch(dut_out, devices, gens)
        t_noise = time.perf_counter() - t_start

        rf_keys = tuple(dut_out.envelopes.keys())
        program = self._compiled_program(plan, rf_keys, precision)
        program.begin_capture()
        program.last_stage_seconds["plan"] = t_plan
        program.last_stage_seconds["nonlinearity"] = t_nonlin
        program.last_stage_seconds["noise"] = t_noise

        with program.stage("mix"):
            rf_arrays = {
                h: np.asarray(env) for h, env in dut_out.envelopes.items()
            }
            if cfg.random_path_phase:
                if any(g is None for g in gens):
                    raise ValueError("random_path_phase requires an rng")
                phases = np.array(
                    [cfg.path_phase_rad + g.uniform(0.0, 2.0 * np.pi) for g in gens]
                )
                lo2 = EnvelopeSignal.sine_carrier(
                    n,
                    cfg.engine_rate,
                    cfg.carrier_freq,
                    amplitude=cfg.carrier_amplitude,
                    phase=phases[:, None],
                    offset_hz=cfg.lo_offset_hz,
                )
                baseband = program.execute(
                    rf_arrays, {1: np.asarray(lo2.envelopes[1])}
                )
            else:
                baseband = program.execute(rf_arrays)
        with program.stage("filter"):
            filtered = self._lpf.apply_fft_matrix(baseband)
        return filtered, program

    def _capture_compiled_matrix(
        self,
        devices: Sequence[RFDevice],
        stimulus: Union[Waveform, PiecewiseLinearStimulus],
        rng: Optional[np.random.Generator],
        rngs: Optional[RngList],
        precision: str = "float64",
    ) -> np.ndarray:
        """Digitized records via the compiled whole-lot program.

        The compiled front half plus the shared digitize stage; per-stage
        wall times land in :attr:`last_stage_seconds`.
        """
        gens = self._resolve_rngs(rng, rngs, len(devices))
        filtered, program = self._compiled_front_matrix(
            devices, stimulus, gens, precision
        )
        with program.stage("digitize"):
            mat = self.digitize_matrix(filtered, gens)
        with self._state_lock:
            self.last_stage_seconds = dict(program.last_stage_seconds)
        return mat

    def overdrive_snapshot(self) -> Tuple[float, np.ndarray]:
        """The last capture's (peak ratio, per-device ratios), atomically.

        Readers that poll a board shared with a thread executor get a
        consistent pair from one capture instead of a torn mix of two.
        """
        with self._state_lock:
            return self.last_overdrive_ratio, self.last_overdrive_ratios

    def _add_device_noise_batch(
        self,
        dut_out: EnvelopeSignal,
        devices: Sequence[RFDevice],
        gens: RngList,
    ) -> EnvelopeSignal:
        """Inject each DUT's added thermal noise on the carrier band.

        The complex envelope of bandpass noise occupying ``engine_rate``
        hertz around the carrier has independent gaussian quadratures of
        standard deviation equal to the real noise RMS in that band.
        Each row draws from its own generator, in the same (re, im) order
        as a one-device capture.
        """
        sigmas = []
        for device, g in zip(devices, gens):
            if g is None:
                sigmas.append(0.0)
                continue
            specs = device.specs()
            sigmas.append(
                added_output_noise_vrms(
                    specs.gain_db, specs.nf_db, self.config.engine_rate
                )
            )
        if not any(s > 0.0 for s in sigmas):
            return dut_out
        n = dut_out.n
        h1 = dut_out.harmonic(1)
        noisy = np.array(h1, copy=True)
        for i, (sigma, g) in enumerate(zip(sigmas, gens)):
            if sigma > 0.0 and g is not None:
                noise_env = sigma * (g.normal(size=n) + 1j * g.normal(size=n))
                noisy[i] = h1[i] + noise_env
        envs: Dict[int, np.ndarray] = {1: noisy}
        # carry the other harmonics through untouched
        for h in dut_out.harmonics():
            if h != 1:
                envs[h] = dut_out.envelopes[h]
        return EnvelopeSignal(envs, dut_out.sample_rate, dut_out.carrier_freq)

    # ------------------------------------------------------------------
    # the full path
    # ------------------------------------------------------------------
    def capture(
        self,
        device: RFDevice,
        stimulus: Union[Waveform, PiecewiseLinearStimulus],
        rng: Optional[np.random.Generator] = None,
    ) -> Waveform:
        """One signature acquisition: the digitized baseband response.

        Implemented as a batch of one, so a lone capture and row ``i`` of
        a batched capture run the exact same code path.
        """
        return self.capture_batch([device], stimulus, rngs=[rng])[0]

    def capture_batch(
        self,
        devices: Sequence[RFDevice],
        stimulus: Union[Waveform, PiecewiseLinearStimulus],
        rng: Optional[np.random.Generator] = None,
        *,
        rngs: Optional[RngList] = None,
    ) -> List[Waveform]:
        """One signature acquisition per device, vectorized over the batch.

        Parameters
        ----------
        devices:
            The device batch; results are returned in this order.
        rng:
            Master generator: one independent stream per device is
            spawned exactly like
            :func:`repro.runtime.executor.spawn_generators`, so the
            records equal a per-device loop over those streams.  ``None``
            disables measurement noise (noise-free captures).
        rngs:
            Alternatively, explicit per-device generators (entries may be
            ``None``); mutually exclusive with ``rng``.

        Returns
        -------
        One digitized :class:`~repro.dsp.waveform.Waveform` per device,
        bit-identical to calling :meth:`capture` per device with the same
        per-device generators.
        """
        devices = list(devices)
        if not devices:
            return []
        mat = self._capture_batch_matrix(devices, stimulus, rng, rngs)
        return [
            Waveform(row, self._digitizer.sample_rate, 0.0) for row in mat
        ]

    # ------------------------------------------------------------------
    # signature extraction (Figure 3: FFT magnitude)
    # ------------------------------------------------------------------
    def signature(
        self,
        device: RFDevice,
        stimulus: Union[Waveform, PiecewiseLinearStimulus],
        rng: Optional[np.random.Generator] = None,
        n_bins: Optional[int] = None,
        log_scale: bool = False,
    ) -> np.ndarray:
        """Capture and reduce to the FFT-magnitude signature vector."""
        record = self.capture(device, stimulus, rng)
        return fft_magnitude_signature(
            record, n_bins=n_bins, log_scale=log_scale
        )

    def signature_batch(
        self,
        devices: Sequence[RFDevice],
        stimulus: Union[Waveform, PiecewiseLinearStimulus],
        rng: Optional[np.random.Generator] = None,
        n_bins: Optional[int] = None,
        log_scale: bool = False,
        *,
        rngs: Optional[RngList] = None,
        engine: Optional[str] = None,
    ) -> np.ndarray:
        """FFT-magnitude signatures for a device batch, shape ``(batch, m)``.

        Row ``i`` is bit-identical (``np.array_equal``) to
        ``signature(devices[i], stimulus, rng=stream_i, ...)`` where
        ``stream_i`` is the i-th generator spawned from ``rng`` (see
        :meth:`capture_batch`).  An empty lot yields shape ``(0, m)``
        with the same bin count ``m`` as any non-empty batch, so
        downstream matrix code never sees a degenerate ``(0, 0)``.

        ``engine`` picks the capture implementation (default
        :attr:`default_engine`): ``"compiled"`` runs the preplanned
        whole-lot program (bit-identical to ``"reference"``),
        ``"reference"`` the uncompiled envelope algebra, and ``"fast"``
        the opt-in float32/reduced-harmonic path, which raises
        :class:`FastPathError` rather than silently degrade when the
        stimulus populates harmonics above :attr:`fast_harmonic_cutoff`.
        """
        engine = engine or self.default_engine
        devices = list(devices)
        if engine == "reference":
            mat = self._capture_batch_matrix(devices, stimulus, rng, rngs)
            return fft_magnitude_signature_matrix(
                mat, n_bins=n_bins, log_scale=log_scale
            )
        if engine == "compiled":
            mat = self._capture_compiled_matrix(devices, stimulus, rng, rngs)
        elif engine == "fast":
            mat = self._capture_compiled_matrix(
                devices, stimulus, rng, rngs, precision="float32"
            )
        else:
            raise ValueError(
                f"unknown capture engine {engine!r}; "
                "expected 'compiled', 'reference', or 'fast'"
            )
        t_start = time.perf_counter()
        sig = fft_magnitude_signature_matrix(
            mat, n_bins=n_bins, log_scale=log_scale
        )
        with self._state_lock:
            self.last_stage_seconds["fft"] = time.perf_counter() - t_start
        return sig

    def time_signature(
        self,
        device: RFDevice,
        stimulus: Union[Waveform, PiecewiseLinearStimulus],
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Raw time-domain signature (phase-sensitive; Figure 2 style).

        Provided for the phase-robustness study -- the paper's Section 2.1
        shows why this signature fails under path-phase variation.
        """
        return self.capture(device, stimulus, rng).samples.copy()


def simulation_config() -> SignaturePathConfig:
    """The paper's simulation setup (Section 4.1).

    10 dBm, 900 MHz carrier driving both mixers; mixers generating 2nd and
    3rd harmonic cross products; 10 MHz low-pass; response sampled at
    20 MHz; 5 us stimulus; 1 mV gaussian measurement noise.
    """
    return SignaturePathConfig(
        carrier_freq=900e6,
        carrier_power_dbm=10.0,
        lo_offset_hz=0.0,
        lpf_cutoff_hz=10e6,
        lpf_order=5,
        digitizer_rate=20e6,
        digitizer_noise_vrms=1e-3,
        digitizer_bits=None,
        capture_seconds=5e-6,
        envelope_oversample=4,
        dut_coupling="tuned",
    )


def hardware_config() -> SignaturePathConfig:
    """The paper's hardware prototype setup (Section 4.2).

    100 kHz offset between the mixer LO frequencies (900 MHz and
    900.1 MHz), 1 MHz digitizing rate, 5 ms capture; FFT magnitudes used
    as the signature to remove the phase dependence of the test-lead
    interconnects (modeled as a random path phase per insertion).
    """
    return SignaturePathConfig(
        carrier_freq=900e6,
        carrier_power_dbm=10.0,
        lo_offset_hz=100e3,
        random_path_phase=True,
        lpf_cutoff_hz=450e3,
        lpf_order=5,
        digitizer_rate=1e6,
        digitizer_noise_vrms=2e-3,
        digitizer_bits=12,
        capture_seconds=5e-3,
        envelope_oversample=4,
        dut_coupling="tuned",
    )
