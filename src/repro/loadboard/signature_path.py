"""The signature test path: stimulus -> mixer -> DUT -> mixer -> LPF -> ADC.

Implements the configurations of Figures 2 and 3 of the paper:

* **Basic configuration** (Figure 2): both mixers driven from the same
  carrier.  A path phase mismatch ``phi`` scales the signature by
  ``cos(phi)`` (Equation 4) and can null it completely.
* **Modified configuration** (Figure 3): the second LO is offset by
  ``lo_offset_hz`` (Equation 5) and the FFT *magnitude* of the captured
  record is used as the signature, which removes the phase dependence.

The simulation runs in the harmonic-envelope domain
(:mod:`repro.loadboard.envelope`), which reproduces the passband physics
exactly for the cubic mixers/DUT while sampling only at baseband rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from repro.circuits.device import RFDevice
from repro.circuits.noisefig import added_output_noise_vrms
from repro.dsp.filters import ButterworthLowpass
from repro.dsp.mixer import Mixer
from repro.dsp.sources import dbm_to_vpeak
from repro.dsp.spectral import fft_magnitude_signature
from repro.dsp.units import undb20
from repro.dsp.waveform import PiecewiseLinearStimulus, Waveform
from repro.instruments.digitizer import BasebandDigitizer
from repro.loadboard.envelope import EnvelopeSignal

__all__ = [
    "SignaturePathConfig",
    "SignatureTestBoard",
    "mix_envelope",
    "simulation_config",
    "hardware_config",
]


def mix_envelope(
    mixer: Mixer,
    rf: EnvelopeSignal,
    lo: EnvelopeSignal,
    max_harmonic: int = 12,
) -> EnvelopeSignal:
    """Apply a behavioral mixer's cross-product table in the envelope domain.

    Same model as :meth:`repro.dsp.mixer.Mixer.mix`, but operating on
    :class:`EnvelopeSignal` operands:  ``out = g * sum c_mn rf^m lo^n``.
    """
    max_m = max(m for m, _ in mixer.harmonics.coeffs)
    max_n = max(n for _, n in mixer.harmonics.coeffs)
    rf_pows = {1: rf}
    lo_pows = {1: lo}
    for p in range(2, max_m + 1):
        rf_pows[p] = rf_pows[p - 1].multiply(rf, max_harmonic)
    for p in range(2, max_n + 1):
        lo_pows[p] = lo_pows[p - 1].multiply(lo, max_harmonic)
    out: Optional[EnvelopeSignal] = None
    for (m, n), c in mixer.harmonics.coeffs.items():
        term = rf_pows[m].multiply(lo_pows[n], max_harmonic).scale(c)
        out = term if out is None else out + term
    if out is None:
        raise ValueError("mixer harmonics table is empty; nothing to mix")
    return out.scale(mixer.conversion_gain)


@dataclass
class SignaturePathConfig:
    """Everything that defines one signature-test setup.

    Attributes mirror the hardware: carrier source, the two load-board
    mixers, LPF, digitizer, and the DUT coupling style.

    ``dut_coupling`` is ``"tuned"`` for narrowband DUTs (an LNA's matched
    input/output pass only the carrier band) or ``"wideband"`` for DUTs
    that pass all products.
    """

    carrier_freq: float = 900e6
    carrier_power_dbm: float = 10.0
    lo_offset_hz: float = 0.0
    path_phase_rad: float = 0.0
    random_path_phase: bool = False
    mixer1: Mixer = field(default_factory=lambda: Mixer(conversion_gain=0.5))
    mixer2: Mixer = field(default_factory=lambda: Mixer(conversion_gain=0.5))
    lpf_order: int = 5
    lpf_cutoff_hz: float = 10e6
    digitizer_rate: float = 20e6
    digitizer_noise_vrms: float = 1e-3
    digitizer_bits: Optional[int] = None
    capture_seconds: float = 5e-6
    envelope_oversample: int = 4
    dut_coupling: str = "tuned"
    include_device_noise: bool = True
    max_harmonic: int = 12
    #: fixture losses between the board and the DUT ports, in dB --
    #: nonzero for probe cards (wafer-level test) or lossy sockets
    input_loss_db: float = 0.0
    output_loss_db: float = 0.0
    #: low-cost tester overhead per insertion (single configuration,
    #: Section 2 advantage 2: no per-test setup)
    setup_time: float = 0.010

    def __post_init__(self):
        if self.dut_coupling not in ("tuned", "wideband"):
            raise ValueError("dut_coupling must be 'tuned' or 'wideband'")
        if self.input_loss_db < 0 or self.output_loss_db < 0:
            raise ValueError("fixture losses must be non-negative dB")
        if self.envelope_oversample < 1:
            raise ValueError("envelope_oversample must be >= 1")
        if not (0 < self.lpf_cutoff_hz < self.digitizer_rate):
            raise ValueError("LPF cutoff must be positive and near the capture band")
        if abs(self.lo_offset_hz) >= self.engine_rate / 2.0:
            raise ValueError("LO offset exceeds the envelope bandwidth")

    @property
    def engine_rate(self) -> float:
        """Internal envelope simulation rate."""
        return self.envelope_oversample * self.digitizer_rate

    @property
    def carrier_amplitude(self) -> float:
        """Carrier peak amplitude in volts."""
        return dbm_to_vpeak(self.carrier_power_dbm)

    def total_test_time(self) -> float:
        """Tester seconds for one signature insertion."""
        return self.setup_time + self.capture_seconds


class SignatureTestBoard:
    """Simulates one capture through the load board of Figure 2/3.

    After every capture, :attr:`last_overdrive_ratio` records the DUT
    input peak relative to the device polynomial's saturation amplitude.
    Ratios approaching 1 mean the cubic model is leaving its physical
    validity range; the stimulus optimizer penalizes such drive levels.
    """

    def __init__(self, config: SignaturePathConfig):
        self.config = config
        self._lpf = ButterworthLowpass(
            config.lpf_order, config.lpf_cutoff_hz, config.engine_rate
        )
        self._digitizer = BasebandDigitizer(
            sample_rate=config.digitizer_rate,
            bits=config.digitizer_bits,
            noise_vrms=config.digitizer_noise_vrms,
        )
        #: peak DUT drive / saturation amplitude of the last capture
        self.last_overdrive_ratio: float = 0.0

    # ------------------------------------------------------------------
    # stimulus handling
    # ------------------------------------------------------------------
    def _stimulus_record(
        self, stimulus: Union[Waveform, PiecewiseLinearStimulus]
    ) -> Waveform:
        """Render the stimulus at the engine rate, padded to the capture.

        Accepts a raw :class:`Waveform` or any stimulus object exposing
        ``to_waveform(sample_rate)`` (PWL, multitone, ...).
        """
        cfg = self.config
        if hasattr(stimulus, "to_waveform"):
            wf = stimulus.to_waveform(cfg.engine_rate)
        else:
            wf = stimulus
            if wf.sample_rate != cfg.engine_rate:
                wf = wf.resample(cfg.engine_rate)
        n_needed = int(round(cfg.capture_seconds * cfg.engine_rate))
        if len(wf) < n_needed:
            wf = wf.pad_to(n_needed)
        elif len(wf) > n_needed:
            wf = Waveform(wf.samples[:n_needed], cfg.engine_rate, wf.t0)
        return wf

    # ------------------------------------------------------------------
    # the full path
    # ------------------------------------------------------------------
    def capture(
        self,
        device: RFDevice,
        stimulus: Union[Waveform, PiecewiseLinearStimulus],
        rng: Optional[np.random.Generator] = None,
    ) -> Waveform:
        """One signature acquisition: the digitized baseband response."""
        cfg = self.config
        x = self._stimulus_record(stimulus)
        n = len(x)

        rf_in = EnvelopeSignal.from_baseband(x, cfg.carrier_freq)
        lo1 = EnvelopeSignal.sine_carrier(
            n,
            cfg.engine_rate,
            cfg.carrier_freq,
            amplitude=cfg.carrier_amplitude,
            phase=0.0,
        )
        upconverted = mix_envelope(cfg.mixer1, rf_in, lo1, cfg.max_harmonic)
        if cfg.input_loss_db > 0.0:
            upconverted = upconverted.scale(undb20(-cfg.input_loss_db))

        from repro.circuits.nonlinear import PolynomialNonlinearity

        a1, a2, a3 = device.envelope_poly()
        poly = PolynomialNonlinearity(a1, a2, a3)
        sat = poly.saturation_amplitude

        if cfg.dut_coupling == "tuned":
            # Narrowband DUT: only the carrier band reaches the
            # nonlinearity, so the describing function of the *saturating*
            # transfer is exact -- physical gain compression at any drive,
            # without the raw cubic's fold-back.
            dut_in = upconverted.keep_harmonics([1])
            u1 = dut_in.harmonic(1)
            amps = np.abs(u1)
            peak = float(amps.max()) if len(amps) else 0.0
            self.last_overdrive_ratio = peak / sat if np.isfinite(sat) else 0.0
            if peak > 0.0:
                grid, table = poly.describing_gain_table(1.01 * peak)
                gain = np.interp(amps, grid, table)
            else:
                gain = np.full_like(amps, a1, dtype=float)
            dut_out = EnvelopeSignal(
                {1: gain * u1}, dut_in.sample_rate, dut_in.carrier_freq
            )
        else:
            # Wideband DUT: every product reaches the polynomial.  Only
            # valid below the fold-back point; the optimizer's drive
            # penalty keeps stimuli inside that range.
            dut_in = upconverted
            peak = dut_in.peak_passband_estimate()
            self.last_overdrive_ratio = peak / sat if np.isfinite(sat) else 0.0
            dut_out = dut_in.apply_polynomial(a1, a2, a3, cfg.max_harmonic)

        # DUT envelope dynamics: a finite modulation bandwidth low-passes
        # the carrier-band envelope (tuned coupling only -- a wideband DUT
        # with memory is outside this model's scope)
        env_bw = getattr(device, "envelope_bandwidth", None)
        if env_bw is not None and cfg.dut_coupling == "tuned":
            dut_out = dut_out.filter_harmonic(1, env_bw)

        if cfg.output_loss_db > 0.0:
            dut_out = dut_out.scale(undb20(-cfg.output_loss_db))

        if cfg.include_device_noise and rng is not None:
            dut_out = self._add_device_noise(dut_out, device, rng)

        phase = cfg.path_phase_rad
        if cfg.random_path_phase:
            if rng is None:
                raise ValueError("random_path_phase requires an rng")
            phase = phase + rng.uniform(0.0, 2.0 * np.pi)
        lo2 = EnvelopeSignal.sine_carrier(
            n,
            cfg.engine_rate,
            cfg.carrier_freq,
            amplitude=cfg.carrier_amplitude,
            phase=phase,
            offset_hz=cfg.lo_offset_hz,
        )
        downconverted = mix_envelope(cfg.mixer2, dut_out, lo2, cfg.max_harmonic)

        baseband = downconverted.keep_harmonics([0]).baseband_waveform()
        filtered = self._lpf.apply_fft(baseband)
        return self._digitizer.capture(filtered, cfg.capture_seconds, rng)

    def _add_device_noise(
        self,
        dut_out: EnvelopeSignal,
        device: RFDevice,
        rng: np.random.Generator,
    ) -> EnvelopeSignal:
        """Inject the DUT's added thermal noise on the carrier band.

        The complex envelope of bandpass noise occupying ``engine_rate``
        hertz around the carrier has independent gaussian quadratures of
        standard deviation equal to the real noise RMS in that band.
        """
        specs = device.specs()
        sigma = added_output_noise_vrms(
            specs.gain_db, specs.nf_db, self.config.engine_rate
        )
        if sigma <= 0.0:
            return dut_out
        n = dut_out.n
        noise_env = sigma * (rng.normal(size=n) + 1j * rng.normal(size=n))
        noisy = EnvelopeSignal(
            {1: dut_out.harmonic(1) + noise_env},
            dut_out.sample_rate,
            dut_out.carrier_freq,
        )
        # carry the other harmonics through untouched
        for h in dut_out.harmonics():
            if h != 1:
                noisy.envelopes[h] = dut_out.harmonic(h)
        return noisy

    # ------------------------------------------------------------------
    # signature extraction (Figure 3: FFT magnitude)
    # ------------------------------------------------------------------
    def signature(
        self,
        device: RFDevice,
        stimulus: Union[Waveform, PiecewiseLinearStimulus],
        rng: Optional[np.random.Generator] = None,
        n_bins: Optional[int] = None,
        log_scale: bool = False,
    ) -> np.ndarray:
        """Capture and reduce to the FFT-magnitude signature vector."""
        record = self.capture(device, stimulus, rng)
        return fft_magnitude_signature(
            record, n_bins=n_bins, log_scale=log_scale
        )

    def time_signature(
        self,
        device: RFDevice,
        stimulus: Union[Waveform, PiecewiseLinearStimulus],
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Raw time-domain signature (phase-sensitive; Figure 2 style).

        Provided for the phase-robustness study -- the paper's Section 2.1
        shows why this signature fails under path-phase variation.
        """
        return self.capture(device, stimulus, rng).samples.copy()


def simulation_config() -> SignaturePathConfig:
    """The paper's simulation setup (Section 4.1).

    10 dBm, 900 MHz carrier driving both mixers; mixers generating 2nd and
    3rd harmonic cross products; 10 MHz low-pass; response sampled at
    20 MHz; 5 us stimulus; 1 mV gaussian measurement noise.
    """
    return SignaturePathConfig(
        carrier_freq=900e6,
        carrier_power_dbm=10.0,
        lo_offset_hz=0.0,
        lpf_cutoff_hz=10e6,
        lpf_order=5,
        digitizer_rate=20e6,
        digitizer_noise_vrms=1e-3,
        digitizer_bits=None,
        capture_seconds=5e-6,
        envelope_oversample=4,
        dut_coupling="tuned",
    )


def hardware_config() -> SignaturePathConfig:
    """The paper's hardware prototype setup (Section 4.2).

    100 kHz offset between the mixer LO frequencies (900 MHz and
    900.1 MHz), 1 MHz digitizing rate, 5 ms capture; FFT magnitudes used
    as the signature to remove the phase dependence of the test-lead
    interconnects (modeled as a random path phase per insertion).
    """
    return SignaturePathConfig(
        carrier_freq=900e6,
        carrier_power_dbm=10.0,
        lo_offset_hz=100e3,
        random_path_phase=True,
        lpf_cutoff_hz=450e3,
        lpf_order=5,
        digitizer_rate=1e6,
        digitizer_noise_vrms=2e-3,
        digitizer_bits=12,
        capture_seconds=5e-3,
        envelope_oversample=4,
        dut_coupling="tuned",
    )
