"""Multi-site insertions: N DUTs per handler touchdown on one load board.

The economics model (:class:`repro.runtime.economics.FlowEconomics`)
already prices multi-site test -- quad-site insertions quarter the
per-device tester seconds for a modest board-capital premium -- but the
signature path could only simulate one DUT per insertion.  This module
closes that gap with :class:`MultiSiteBoard`: a load board carrying
``n_sites`` copies of the signature path of Figure 2/3, captured in one
insertion, with the three degradations a real multi-site board adds:

* **site-to-site crosstalk** -- the per-site baseband traces share
  routing into the shared digitizer, so a fraction of every other
  occupied site's filtered baseband leaks into each site's record
  (scalar uniform coupling or a full per-pair matrix);
* **per-site fixture-loss skew** -- each site's socket/trace adds its
  own output loss on top of the base configuration;
* **shared-instrument contention** -- one LO and one digitizer serve
  all sites, so per-site readout and LO arbitration serialize; the
  insertion time grows with occupancy and the stream metrics can
  observe the arbitration overhead.

Determinism contract
--------------------
Devices are assigned round-robin: lot position ``i`` lands on site
``i % n_sites``, insertion ``i // n_sites``.  Each site's devices run
the *unchanged* single-site front end
(:meth:`~repro.loadboard.signature_path.SignatureTestBoard.filtered_baseband_matrix`)
of a per-site board, crosstalk couples the filtered-baseband rows of
co-inserted devices, and each site's records then pass through the
shared digitize stage with the same per-device RNG streams a serial
capture would use.  With zero coupling the coupling stage is skipped
entirely, so an N-site capture is bit-identical (``np.array_equal``) to
N independent single-site captures on the per-site boards -- the
``multisite-serial-equivalence`` relation in :mod:`repro.verify`
enforces exactly that on every executor backend.

Chunk alignment
---------------
Crosstalk groups are positional, so splitting a lot mid-insertion would
change the physics.  :attr:`MultiSiteBoard.chunk_alignment` publishes
``n_sites``; the executor layer (``_chunk_bounds``) rounds every chunk
boundary to a multiple of it, keeping streamed/chunked captures
bit-identical to the whole-lot capture.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.circuits.device import RFDevice
from repro.dsp.spectral import fft_magnitude_signature_matrix
from repro.dsp.waveform import PiecewiseLinearStimulus, Waveform
from repro.loadboard.signature_path import (
    RngList,
    SignaturePathConfig,
    SignatureTestBoard,
    resolve_rng_streams,
)

__all__ = ["MultiSiteConfig", "MultiSiteBoard"]


@dataclass
class MultiSiteConfig:
    """Degradations of an ``n_sites``-up load board.

    ``crosstalk_coupling`` is the linear fraction of every *other*
    occupied site's filtered baseband that leaks into each site's
    record (0 = perfect isolation); ``coupling_matrix`` overrides it
    with a full per-pair ``(n_sites, n_sites)`` matrix whose diagonal
    must be zero.  ``site_loss_skew_db`` adds per-site output fixture
    loss on top of the base configuration.  The contention fields model
    the shared-instrument arbitration: every occupied site pays one
    serialized digitizer readout, and each additional occupied site one
    LO retune.

    lint-ranges: crosstalk_coupling=[-1, 1] lo_retune_seconds=[0, 1]
    lint-ranges: digitizer_readout_seconds=[0, 1]
    """

    n_sites: int = 4
    crosstalk_coupling: float = 0.0
    coupling_matrix: Optional[np.ndarray] = None
    site_loss_skew_db: Optional[Sequence[float]] = None
    lo_retune_seconds: float = 0.0
    digitizer_readout_seconds: float = 0.0
    #: per-site capture-engine overrides (None entries use the call's
    #: engine); lets one site fall back to the reference engine while
    #: the rest run compiled -- bit-identical either way
    site_engines: Optional[Sequence[Optional[str]]] = field(default=None)

    def __post_init__(self):
        if self.n_sites < 1:
            raise ValueError("n_sites must be >= 1")
        if self.lo_retune_seconds < 0 or self.digitizer_readout_seconds < 0:
            raise ValueError("contention times must be non-negative")
        if self.coupling_matrix is not None:
            mat = np.asarray(self.coupling_matrix, dtype=float)
            if mat.shape != (self.n_sites, self.n_sites):
                raise ValueError(
                    f"coupling_matrix must be ({self.n_sites}, {self.n_sites})"
                )
            if np.any(np.diag(mat) != 0.0):
                raise ValueError("coupling_matrix diagonal must be zero")
            self.coupling_matrix = mat
        if self.site_loss_skew_db is not None:
            skew = [float(s) for s in self.site_loss_skew_db]
            if len(skew) != self.n_sites:
                raise ValueError("need one loss-skew entry per site")
            if any(s < 0.0 for s in skew):
                raise ValueError("site loss skew must be non-negative dB")
            self.site_loss_skew_db = skew
        if self.site_engines is not None:
            engines = list(self.site_engines)
            if len(engines) != self.n_sites:
                raise ValueError("need one engine entry (or None) per site")
            self.site_engines = engines

    @property
    def has_crosstalk(self) -> bool:
        """True when any site-to-site coupling is configured."""
        if self.coupling_matrix is not None:
            return bool(np.any(self.coupling_matrix != 0.0))
        return self.crosstalk_coupling != 0.0


class MultiSiteBoard:
    """An ``n_sites``-up signature load board captured per insertion.

    One :class:`~repro.loadboard.signature_path.SignatureTestBoard` is
    built per site (sharing the base configuration, plus that site's
    loss skew), so a site's isolated physics is *exactly* the
    single-site board's.  The multi-site capture runs every site's
    analog front end, couples the co-inserted filtered-baseband rows,
    and digitizes through the per-site back ends.

    Exposes the same duck-typed surface the runtime layer dispatches on
    (``signature_batch`` / ``config`` / ``site_of``), so
    ``measure_signatures``, :class:`~repro.runtime.production.ProductionTestFlow`
    and the streaming service work unchanged.
    """

    def __init__(self, config: SignaturePathConfig, sites: MultiSiteConfig):
        self.sites = sites
        skew = sites.site_loss_skew_db or [0.0] * sites.n_sites
        self.site_boards: List[SignatureTestBoard] = [
            SignatureTestBoard(
                replace(config, output_loss_db=config.output_loss_db + skew[j])
            )
            for j in range(sites.n_sites)
        ]
        #: the base (site-0-skew-free) configuration; timing fields are
        #: shared by all sites, so runtime code may read it directly
        self.config = config

    # ------------------------------------------------------------------
    # lot geometry
    # ------------------------------------------------------------------
    @property
    def n_sites(self) -> int:
        return self.sites.n_sites

    @property
    def chunk_alignment(self) -> int:
        """Executor chunk boundaries must be multiples of this.

        Crosstalk couples positional insertion groups of ``n_sites``
        devices; aligned chunks keep any chunking bit-identical to the
        whole-lot capture.
        """
        return self.sites.n_sites

    def site_of(self, lot_position: int) -> int:
        """The site testing the device at this (chunk-local) position."""
        return int(lot_position) % self.sites.n_sites

    def site_indices(self, n_devices: int) -> List[List[int]]:
        """Per-site lot positions for an ``n_devices`` lot (round-robin)."""
        return [
            list(range(j, n_devices, self.sites.n_sites))
            for j in range(self.sites.n_sites)
        ]

    # ------------------------------------------------------------------
    # shared-instrument contention (pure timing, no signal effect)
    # ------------------------------------------------------------------
    def insertion_test_time(self, occupied: Optional[int] = None) -> float:
        """Tester seconds for one insertion with ``occupied`` sites live.

        All sites capture concurrently (one stimulus replay), but the
        shared digitizer reads the sites out serially and the shared LO
        re-arbitrates between consecutive readouts: ``occupied``
        readouts plus ``occupied - 1`` retunes on top of the single-site
        setup + capture time.
        """
        occupied = self.sites.n_sites if occupied is None else int(occupied)
        if not (0 < occupied <= self.sites.n_sites):
            raise ValueError("occupied must be in 1..n_sites")
        cfg = self.config
        return (
            cfg.setup_time
            + cfg.capture_seconds
            + occupied * self.sites.digitizer_readout_seconds
            + (occupied - 1) * self.sites.lo_retune_seconds
        )

    def arbitration_seconds(self, occupied: Optional[int] = None) -> float:
        """Serialized-instrument overhead of one insertion.

        The extra tester seconds versus ``occupied`` ideal parallel
        single-site insertions sharing one setup -- what the per-site
        stream metrics report as contention wait.
        """
        occupied = self.sites.n_sites if occupied is None else int(occupied)
        single = self.sites.digitizer_readout_seconds
        return self.insertion_test_time(occupied) - (
            self.config.setup_time + self.config.capture_seconds + single
        )

    def device_test_time(self) -> float:
        """Amortized tester seconds per device at full occupancy."""
        return self.insertion_test_time() / self.sites.n_sites

    # ------------------------------------------------------------------
    # the coupled capture
    # ------------------------------------------------------------------
    def _site_engine(self, site: int, engine: Optional[str]) -> Optional[str]:
        if self.sites.site_engines is not None:
            override = self.sites.site_engines[site]
            if override is not None:
                return override
        return engine

    def _couple_filtered(
        self, filtered_site: List[np.ndarray]
    ) -> List[np.ndarray]:
        """Mix co-inserted filtered-baseband rows site-to-site.

        Row ``k`` of each site's matrix is insertion ``k``; only sites
        occupied in the same insertion couple (partial final insertions
        leak only between their live sites).  Zero coupling returns the
        inputs untouched -- the bit-exactness guard behind the
        ``multisite-serial-equivalence`` relation.
        """
        sites = self.sites
        if not sites.has_crosstalk:
            return filtered_site
        lens = [f.shape[0] for f in filtered_site]
        if sites.coupling_matrix is None:
            c = sites.crosstalk_coupling
            max_rows = max(lens)
            n = filtered_site[0].shape[-1]
            totals = np.zeros((max_rows, n))
            for f in filtered_site:
                totals[: f.shape[0]] += f
            return [
                f + c * (totals[: f.shape[0]] - f) for f in filtered_site
            ]
        coupled = [np.array(f, copy=True) for f in filtered_site]
        for j, out in enumerate(coupled):
            for j2, f2 in enumerate(filtered_site):
                if j2 == j:
                    continue
                common = min(lens[j], lens[j2])
                out[:common] += sites.coupling_matrix[j, j2] * f2[:common]
        return coupled

    def _capture_matrix(
        self,
        devices: Sequence[RFDevice],
        stimulus: Union[Waveform, PiecewiseLinearStimulus],
        rng: Optional[np.random.Generator],
        rngs: Optional[RngList],
        engine: Optional[str],
    ) -> np.ndarray:
        """Digitized records for a lot, in lot order, crosstalk applied."""
        devices = list(devices)
        gens = resolve_rng_streams(rng, rngs, len(devices))
        per_site = self.site_indices(len(devices))

        filtered_site: List[np.ndarray] = []
        site_gens: List[List] = []
        for j, board in enumerate(self.site_boards):
            idx = per_site[j]
            f, g = board.filtered_baseband_matrix(
                [devices[i] for i in idx],
                stimulus,
                rngs=[gens[i] for i in idx],
                engine=self._site_engine(j, engine),
            )
            filtered_site.append(f)
            site_gens.append(g)

        coupled = self._couple_filtered(filtered_site)

        out: Optional[np.ndarray] = None
        for j, board in enumerate(self.site_boards):
            mat_j = board.digitize_matrix(coupled[j], site_gens[j])
            if out is None:
                out = np.empty((len(devices), mat_j.shape[-1]))
            out[per_site[j]] = mat_j
        if out is None:  # unreachable: n_sites >= 1 is validated
            raise RuntimeError("multi-site board built with no sites")
        return out

    def capture_batch(
        self,
        devices: Sequence[RFDevice],
        stimulus: Union[Waveform, PiecewiseLinearStimulus],
        rng: Optional[np.random.Generator] = None,
        *,
        rngs: Optional[RngList] = None,
        engine: Optional[str] = None,
    ) -> List[Waveform]:
        """One digitized record per device, in lot order.

        With zero crosstalk, record ``i`` is bit-identical to capturing
        device ``i`` alone on ``site_boards[site_of(i)]`` with the same
        per-device generator.
        """
        mat = self._capture_matrix(devices, stimulus, rng, rngs, engine)
        return [
            Waveform(row, self.config.digitizer_rate, 0.0) for row in mat
        ]

    def signature_batch(
        self,
        devices: Sequence[RFDevice],
        stimulus: Union[Waveform, PiecewiseLinearStimulus],
        rng: Optional[np.random.Generator] = None,
        n_bins: Optional[int] = None,
        log_scale: bool = False,
        *,
        rngs: Optional[RngList] = None,
        engine: Optional[str] = None,
    ) -> np.ndarray:
        """FFT-magnitude signatures for a lot, shape ``(batch, m)``.

        The duck-typed surface ``measure_signatures`` / the production
        flow / the streaming service dispatch on.  Empty lots yield
        ``(0, m)`` with the same bin count as any non-empty batch.
        """
        mat = self._capture_matrix(devices, stimulus, rng, rngs, engine)
        return fft_magnitude_signature_matrix(
            mat, n_bins=n_bins, log_scale=log_scale
        )

    def capture(
        self,
        device: RFDevice,
        stimulus: Union[Waveform, PiecewiseLinearStimulus],
        rng: Optional[np.random.Generator] = None,
    ) -> Waveform:
        """One device on site 0 (an insertion with the other sites empty)."""
        return self.capture_batch([device], stimulus, rngs=[rng])[0]

    def signature(
        self,
        device: RFDevice,
        stimulus: Union[Waveform, PiecewiseLinearStimulus],
        rng: Optional[np.random.Generator] = None,
        n_bins: Optional[int] = None,
        log_scale: bool = False,
    ) -> np.ndarray:
        """One device on site 0 (an insertion with the other sites empty)."""
        return self.signature_batch(
            [device], stimulus, rngs=[rng], n_bins=n_bins, log_scale=log_scale
        )[0]

    def overdrive_snapshot(self) -> Tuple[float, np.ndarray]:
        """Worst per-site overdrive of the last capture (site order)."""
        peaks = []
        ratio_blocks = []
        for board in self.site_boards:
            peak, ratios = board.overdrive_snapshot()
            peaks.append(peak)
            ratio_blocks.append(np.asarray(ratios))
        return max(peaks), np.concatenate(ratio_blocks)
