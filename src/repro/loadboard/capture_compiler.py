"""Capture-chain compiler: the mixer-2 downconversion as a fused op tape.

``SignatureTestBoard._capture_batch_matrix`` spends most of a batched
capture inside :func:`~repro.loadboard.signature_path.mix_envelope`:
the generic harmonic-envelope algebra walks Python dicts, builds
two-sided coefficient tables, and materializes every harmonic of every
mixer cross product -- even though the signature only ever reads the
*baseband* (harmonic 0) of the mixer-2 output.

This module compiles that stage once per capture plan:

1. **Trace.**  The real :func:`mix_envelope` runs over symbolic
   envelopes (:class:`_SymbolicEnvelope`) whose operations record an op
   tape instead of touching arrays.  The trace therefore replays the
   algebra's exact dict-iteration and accumulation order by
   construction -- the property the batching bit-identity contract
   rests on.
2. **Lower.**  The final ``keep_harmonics([0]).baseband()`` value is
   rewritten into real arithmetic using only *bitwise value-preserving*
   identities of IEEE-754 / NumPy elementwise kernels (each one is
   locked by ``tests/loadboard/test_capture_compiler.py``):

   * ``(x / 2) * 2 == x`` and ``x * 1.0 == x`` (power-of-two scaling);
   * ``conj(x) / 2 == conj(x / 2)`` and conjugation commutes with
     doubling, real scaling, products and sums;
   * ``Re(a * conj(b)) == Re(conj(a) * b)`` and multiplication
     commutes, so each conjugate-mirrored product pair costs **one**
     complex multiply whose real part is accumulated twice;
   * ``Re(c + d) == Re(c) + Re(d)`` and ``Re(r * c) == r * Re(c)`` for
     a real-coerced operand ``r``, so the harmonic-0 chain runs in real
     float64 end to end.

3. **DCE + fold.**  Only ops reachable from the baseband output are
   kept (the sparse harmonic-mixing structure: each surviving ``mul``
   is one nonzero of the harmonic-product matrix); subgraphs fed only
   by plan-bound inputs (the cached LO and its powers) fold into
   precomputed constants at compile time using the same kernels.
4. **Execute.**  The surviving ops run over preallocated per-plan
   workspaces with ``out=`` kernels -- the steady-state inner loop
   performs no Python-level envelope bookkeeping and no allocations.

Exact mode is bit-identical (``np.array_equal``) to the traced
reference chain.  The opt-in float32 fast path
(:meth:`CompiledCaptureProgram` with ``precision="float32"``) runs the
same tape in complex64/float32 under the certified error budget of
:func:`fast_path_error_bound`, and *refuses* (:class:`FastPathError`)
whenever its reduced harmonic ceiling would actually drop populated
stimulus content (see :func:`reduction_drops_content`).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "CaptureTape",
    "CompiledCaptureProgram",
    "FastPathError",
    "TapeNode",
    "FLOAT32_EPS",
    "fast_path_error_bound",
    "fast_path_quantization_bound",
    "reduction_drops_content",
    "trace_mixer_baseband",
]

#: machine epsilon of IEEE-754 binary32 (2**-23)
FLOAT32_EPS = 1.1920928955078125e-07


class FastPathError(ValueError):
    """The reduced-harmonic fast path would drop populated stimulus content."""


def fast_path_error_bound(op_count: float) -> float:
    """Certified relative-L2 error budget of the float32 mixer tape.

    Every elementwise float32 kernel rounds with relative error at most
    ``FLOAT32_EPS / 2``; a tape of ``op_count`` stages compounds at most
    linearly in the op count, and the factor 16 budgets constructive
    accumulation across the downstream filter + FFT (empirical residuals
    on the golden corpora sit two orders of magnitude below this line).

    lint-ranges: op_count=[1, 4096]
    lint-float32-budget: 1e-8
    """
    return 16.0 * op_count * 1.1920928955078125e-07


def fast_path_quantization_bound(lsb: float, n_bins: float) -> float:
    """Absolute L2 slack for ADC requantization of the fast path.

    A float32 rounding of the analog record can move samples sitting on
    a quantizer decision boundary by one code.  In the worst case every
    retained FFT bin absorbs a full LSB of the ``2/n``-normalized
    spectrum, so the signature vector moves by at most
    ``2 * lsb * sqrt(n_bins)`` in L2.  ``lsb`` is 0 for an ideal
    (unquantized) digitizer, collapsing the bound to zero.

    lint-ranges: lsb=[0, 1] n_bins=[1, 65536]
    lint-float32-budget: 1e-3
    """
    return 2.0 * lsb * np.sqrt(n_bins)


# ----------------------------------------------------------------------
# the op tape
# ----------------------------------------------------------------------
@dataclass
class TapeNode:
    """One SSA value of the traced mixer algebra."""

    op: str  # input|zeros|half|double|conj|mul|add|scale|real
    args: Tuple[int, ...] = ()
    scalar: Optional[float] = None  # for scale
    key: Optional[Tuple[str, int]] = None  # for input: ("rf"|"lo", harmonic)
    dtype: str = "c"  # "c" complex / "r" real


class CaptureTape:
    """Hash-consed op tape with value-exact smart constructors.

    Every rewrite applied here preserves the *bitwise* value of the
    node under NumPy's elementwise kernels; the identities are asserted
    on random data by ``TestLoweringIdentities``.

    lint-concurrency: single-writer

    A tape is mutated only while the compiling thread traces the mixer
    chain; once ``CompiledCaptureProgram`` is built the tape is frozen,
    and the program's publication into the board's plan cache (under
    ``SignatureTestBoard._state_lock``) orders the writes before
    any cross-thread read.
    """

    def __init__(self):
        self.nodes: List[TapeNode] = []
        self._cons: Dict[tuple, int] = {}
        self._real_products: Dict[tuple, int] = {}

    # -- plumbing ------------------------------------------------------
    def _new(self, node: TapeNode) -> int:
        self.nodes.append(node)
        return len(self.nodes) - 1

    def _cached(self, cons_key: tuple, node: TapeNode) -> int:
        nid = self._cons.get(cons_key)
        if nid is None:
            nid = self._new(node)
            self._cons[cons_key] = nid
        return nid

    def dtype(self, nid: int) -> str:
        return self.nodes[nid].dtype

    # -- leaves --------------------------------------------------------
    def input_(self, kind: str, harmonic: int, dtype: str = "c") -> int:
        return self._cached(
            ("input", kind, harmonic),
            TapeNode("input", key=(kind, harmonic), dtype=dtype),
        )

    def zeros(self) -> int:
        return self._cached(("zeros",), TapeNode("zeros", dtype="r"))

    # -- unary ---------------------------------------------------------
    def conj(self, a: int) -> int:
        node = self.nodes[a]
        if node.dtype == "r":
            return a  # conj of a real value is itself
        if node.op == "conj":
            return node.args[0]
        return self._cached(("conj", a), TapeNode("conj", (a,), dtype="c"))

    def half(self, a: int) -> int:
        node = self.nodes[a]
        if node.op == "double":
            return node.args[0]  # (x * 2) / 2 == x
        if node.op == "conj":
            return self.conj(self.half(node.args[0]))  # conj(x)/2 == conj(x/2)
        return self._cached(("half", a), TapeNode("half", (a,), dtype=node.dtype))

    def double(self, a: int) -> int:
        node = self.nodes[a]
        if node.op == "half":
            return node.args[0]  # (x / 2) * 2 == x
        if node.op == "conj":
            return self.conj(self.double(node.args[0]))
        return self._cached(("double", a), TapeNode("double", (a,), dtype=node.dtype))

    def scale(self, a: int, factor: float) -> int:
        factor = float(factor)
        if factor - 1.0 == 0.0:
            return a  # x * 1.0 == x (elide only the exact identity factor)
        node = self.nodes[a]
        if node.op == "conj":
            return self.conj(self.scale(node.args[0], factor))
        return self._cached(
            ("scale", a, np.float64(factor).tobytes()),
            TapeNode("scale", (a,), scalar=factor, dtype=node.dtype),
        )

    # -- binary --------------------------------------------------------
    def mul(self, a: int, b: int) -> int:
        na, nb = self.nodes[a], self.nodes[b]
        if na.op == "conj" and nb.op == "conj":
            # conj(x) * conj(y) == conj(x * y), componentwise exactly
            return self.conj(self.mul(na.args[0], nb.args[0]))
        dtype = "r" if na.dtype == "r" and nb.dtype == "r" else "c"
        if na.dtype == "r" or nb.dtype == "r":
            # real-operand products commute bitwise in both components;
            # complex x complex only commutes in the real part (FMA skews
            # the imaginary accumulation), so those keep operand order
            a, b = (a, b) if a <= b else (b, a)
        return self._cached(("mul", a, b), TapeNode("mul", (a, b), dtype=dtype))

    def add(self, a: int, b: int) -> int:
        na, nb = self.nodes[a], self.nodes[b]
        if na.op == "conj" and nb.op == "conj":
            return self.conj(self.add(na.args[0], nb.args[0]))
        dtype = "r" if na.dtype == "r" and nb.dtype == "r" else "c"
        lo, hi = (a, b) if a <= b else (b, a)  # ufunc add commutes bitwise
        return self._cached(("add", lo, hi), TapeNode("add", (lo, hi), dtype=dtype))

    # -- real-part lowering -------------------------------------------
    def _conj_base(self, nid: int) -> Tuple[int, int]:
        node = self.nodes[nid]
        if node.op == "conj":
            return node.args[0], 1
        return nid, 0

    def real(self, a: int) -> int:
        """A real node computing ``Re(a)`` bitwise, pushed through the dag."""
        node = self.nodes[a]
        if node.dtype == "r":
            return a
        if node.op == "conj":
            return self.real(node.args[0])
        if node.op == "half":
            return self.half(self.real(node.args[0]))
        if node.op == "double":
            return self.double(self.real(node.args[0]))
        if node.op == "scale":
            return self.scale(self.real(node.args[0]), node.scalar)
        if node.op == "add":
            return self.add(self.real(node.args[0]), self.real(node.args[1]))
        if node.op == "mul":
            x, y = node.args
            if self.nodes[x].dtype == "r":
                return self.mul(x, self.real(y))
            if self.nodes[y].dtype == "r":
                return self.mul(y, self.real(x))
            # Re(a * conj(b)) == Re(conj(a) * b) and Re(conj(ab)) == Re(ab):
            # conjugate-mirrored products share one real part
            (bx, fx), (by, fy) = self._conj_base(x), self._conj_base(y)
            keys = [
                tuple(sorted(((bx, fx), (by, fy)))),
                tuple(sorted(((bx, fx ^ 1), (by, fy ^ 1)))),
            ]
            pair_key = min(keys)
            nid = self._real_products.get(pair_key)
            if nid is None:
                nid = self._cached(("real", a), TapeNode("real", (a,), dtype="r"))
                self._real_products[pair_key] = nid
            return nid
        return self._cached(("real", a), TapeNode("real", (a,), dtype="r"))

    # -- introspection -------------------------------------------------
    def fingerprint(self, out: int) -> tuple:
        """Canonical structure of the dag reaching ``out``.

        Two tapes whose fingerprints match compute the same expression;
        the fast path compares reduced vs full-ceiling fingerprints to
        detect whether a harmonic ceiling actually drops content.
        """
        order: List[int] = []
        index: Dict[int, int] = {}

        def visit(nid: int) -> int:
            if nid in index:
                return index[nid]
            node = self.nodes[nid]
            args = tuple(visit(arg) for arg in node.args)
            index[nid] = len(order)
            order.append((node.op, args, node.scalar, node.key))
            return index[nid]

        visit(out)
        return tuple(order)


class _SymbolicEnvelope:
    """Mirror of :class:`repro.loadboard.envelope.EnvelopeSignal` over tape nodes.

    Implements exactly the operations :func:`mix_envelope` and the board's
    baseband extraction use -- ``multiply`` (with the two-sided cache,
    accumulation order and fold of the real algebra), ``scale``, ``+``,
    ``keep_harmonics`` and ``baseband`` -- so tracing the *real*
    ``mix_envelope`` function reproduces the reference op sequence by
    construction.  Harmonic-0 envelopes are real-coerced like the
    ``EnvelopeSignal`` constructor.
    """

    def __init__(self, tape: CaptureTape, envelopes: Dict[int, int]):
        self.tape = tape
        self.envelopes: Dict[int, int] = {
            h: (tape.real(nid) if h == 0 else nid) for h, nid in envelopes.items()
        }
        self._two_sided_cache: Optional[Dict[int, int]] = None

    def _two_sided(self) -> Dict[int, int]:
        if self._two_sided_cache is None:
            t: Dict[int, int] = {}
            for h, nid in self.envelopes.items():
                if h == 0:
                    t[0] = nid
                else:
                    t[h] = self.tape.half(nid)
                    t[-h] = self.tape.half(self.tape.conj(nid))
            self._two_sided_cache = t
        return self._two_sided_cache

    def multiply(
        self, other: "_SymbolicEnvelope", max_harmonic: int = 12
    ) -> "_SymbolicEnvelope":
        a = self._two_sided()
        b = other._two_sided()
        acc: Dict[int, int] = {}
        for ha, ea in a.items():
            for hb, eb in b.items():
                k = ha + hb
                if k < 0 or k > max_harmonic:
                    continue
                prod = self.tape.mul(ea, eb)
                acc[k] = self.tape.add(acc[k], prod) if k in acc else prod
        out: Dict[int, int] = {}
        for h, nid in acc.items():
            if h < 0:
                continue
            out[h] = self.tape.double(nid) if h != 0 else nid
        if not out:
            out = {0: self.tape.zeros()}
        return _SymbolicEnvelope(self.tape, out)

    def scale(self, factor: float) -> "_SymbolicEnvelope":
        return _SymbolicEnvelope(
            self.tape,
            {h: self.tape.scale(nid, factor) for h, nid in self.envelopes.items()},
        )

    def __add__(self, other: "_SymbolicEnvelope") -> "_SymbolicEnvelope":
        out = dict(self.envelopes)
        for h, nid in other.envelopes.items():
            out[h] = self.tape.add(out[h], nid) if h in out else nid
        return _SymbolicEnvelope(self.tape, out)

    def keep_harmonics(self, harmonics) -> "_SymbolicEnvelope":
        keep = set(harmonics)
        out = {h: nid for h, nid in self.envelopes.items() if h in keep}
        if not out:
            out = {0: self.tape.zeros()}
        return _SymbolicEnvelope(self.tape, out)

    def baseband(self) -> int:
        if 0 not in self.envelopes:
            return self.tape.zeros()
        return self.tape.real(self.envelopes[0])


def trace_mixer_baseband(
    mixer,
    rf_harmonics: Sequence[int],
    lo_harmonics: Sequence[int],
    max_harmonic: int,
) -> Tuple[CaptureTape, int]:
    """Trace mixer-2 downconversion + baseband selection into a tape.

    ``rf_harmonics`` / ``lo_harmonics`` are the envelope dict keys of the
    DUT output and the second LO *in dict order* -- the order drives the
    algebra's accumulation sequence, so it is part of the tape identity.
    """
    from repro.loadboard.signature_path import mix_envelope

    tape = CaptureTape()
    rf = _SymbolicEnvelope(
        tape,
        {h: tape.input_("rf", h, dtype="r" if h == 0 else "c") for h in rf_harmonics},
    )
    lo = _SymbolicEnvelope(
        tape,
        {h: tape.input_("lo", h, dtype="r" if h == 0 else "c") for h in lo_harmonics},
    )
    out = mix_envelope(mixer, rf, lo, max_harmonic, lo_powers={1: lo})
    return tape, out.keep_harmonics([0]).baseband()


def reduction_drops_content(
    mixer,
    rf_harmonics: Sequence[int],
    lo_harmonics: Sequence[int],
    max_harmonic: int,
    harmonic_ceiling: int,
) -> bool:
    """Would truncating the algebra at ``harmonic_ceiling`` change the result?

    Compares the dag structure of the baseband output traced at the full
    ``max_harmonic`` against the reduced ceiling, over the *populated*
    input harmonics only.  A differing structure means the ceiling drops
    cross products that feed the signature -- the fast path must refuse
    rather than silently degrade.
    """
    if harmonic_ceiling >= max_harmonic:
        return False
    full_tape, full_out = trace_mixer_baseband(
        mixer, rf_harmonics, lo_harmonics, max_harmonic
    )
    red_tape, red_out = trace_mixer_baseband(
        mixer, rf_harmonics, lo_harmonics, harmonic_ceiling
    )
    return full_tape.fingerprint(full_out) != red_tape.fingerprint(red_out)


# ----------------------------------------------------------------------
# compilation: DCE, constant folding, buffer planning
# ----------------------------------------------------------------------
def _apply_kernel(node: TapeNode, a, b, out=None):
    """Evaluate one tape op with the exact kernels the reference uses.

    Used both for compile-time constant folding and (with ``out=``
    workspaces) for the runtime inner loop, so folded constants are
    bitwise what the reference algebra would have produced.
    """
    if node.op == "half":
        return np.divide(a, 2.0, out=out)
    if node.op == "double":
        return np.multiply(a, 2.0, out=out)
    if node.op == "conj":
        return np.conjugate(a, out=out)
    if node.op == "mul":
        return np.multiply(a, b, out=out)
    if node.op == "add":
        return np.add(a, b, out=out)
    if node.op == "scale":
        return np.multiply(a, node.scalar, out=out)
    if node.op == "real":
        if out is None:
            return a.real + 0.0  # detach from the complex buffer
        np.copyto(out, a.real)
        return out
    raise AssertionError(f"unexpected kernel op {node.op!r}")


@dataclass
class _Step:
    """One scheduled runtime op: kernel + operand locations."""

    node: TapeNode
    out_slot: int
    a: Tuple[str, object]  # ("buf", slot) | ("const", nid) | ("input", key)
    b: Optional[Tuple[str, object]] = None


class CompiledCaptureProgram:
    """An executable, workspace-backed lowering of one mixer tape.

    Parameters
    ----------
    tape, out:
        The traced dag and its baseband output node.
    const_inputs:
        Concrete arrays for plan-bound input slots (the cached LO
        envelopes); every subgraph they feed folds at compile time.
    precision:
        ``"float64"`` (exact mode -- bit-identical to the reference) or
        ``"float32"`` (fast path: complex64/float32 workspaces).

    The per-batch-size workspaces are produced lazily and kept in a
    small LRU pool (:attr:`workspace_pool_size`); :meth:`nbytes` and
    :meth:`release_workspaces` support the board's plan-cache memory
    accounting.  Stage wall times accumulate in :attr:`stage_seconds`
    (guarded by the workspace lock) with the calling thread's most
    recent capture in :attr:`last_stage_seconds`.

    lint-concurrency: single-writer consts input_keys _input_dtype steps _slot_dtype _out_slot _out_const out_node fingerprint op_count

    The tagged attributes are written once by ``_schedule`` while the
    program is still private to the compiling thread; sharing starts
    only when the board publishes the finished program into its plan
    cache under ``SignatureTestBoard._state_lock``.
    """

    #: distinct batch sizes whose workspaces are kept alive
    workspace_pool_size = 4

    def __init__(
        self,
        tape: CaptureTape,
        out: int,
        const_inputs: Optional[Dict[Tuple[str, int], np.ndarray]] = None,
        precision: str = "float64",
    ):
        if precision not in ("float64", "float32"):
            raise ValueError("precision must be 'float64' or 'float32'")
        self.precision = precision
        self._cdtype = np.complex128 if precision == "float64" else np.complex64
        self._rdtype = np.float64 if precision == "float64" else np.float32
        const_inputs = dict(const_inputs or {})

        needed = self._needed(tape, out)
        consts = self._fold_constants(tape, needed, const_inputs)
        self._schedule(tape, needed, consts, out)
        self.out_node = out
        self.fingerprint = tape.fingerprint(out)
        self.op_count = len(self.steps)
        self._workspaces: "Dict[tuple, List[np.ndarray]]" = {}
        self._workspace_lock = threading.Lock()
        self.stage_seconds: Dict[str, float] = {}
        self._capture_tls = threading.local()

    # -- compile passes ------------------------------------------------
    @staticmethod
    def _needed(tape: CaptureTape, out: int) -> List[int]:
        needed = set()
        stack = [out]
        while stack:
            nid = stack.pop()
            if nid in needed:
                continue
            needed.add(nid)
            stack.extend(tape.nodes[nid].args)
        return sorted(needed)  # construction order is topological

    def _fold_constants(self, tape, needed, const_inputs) -> Dict[int, np.ndarray]:
        """Evaluate every needed node fed only by plan-bound inputs."""
        consts: Dict[int, np.ndarray] = {}
        for nid in needed:
            node = tape.nodes[nid]
            if node.op == "input":
                if node.key in const_inputs:
                    arr = np.asarray(const_inputs[node.key])
                    consts[nid] = arr.real + 0.0 if node.dtype == "r" else arr
                continue
            if node.op == "zeros":
                consts[nid] = np.zeros(1)
                continue
            if all(arg in consts for arg in node.args):
                args = [consts[arg] for arg in node.args]
                a = args[0]
                b = args[1] if len(args) > 1 else None
                consts[nid] = _apply_kernel(node, a, b)
        if self.precision == "float32":
            cast = {}
            for nid, arr in consts.items():
                kind = np.complex64 if np.iscomplexobj(arr) else np.float32
                cast[nid] = np.ascontiguousarray(arr, dtype=kind)
            consts = cast
        return consts

    def _schedule(self, tape, needed, consts, out) -> None:
        """Linearize runtime ops and assign liveness-reused buffer slots."""
        runtime = [
            nid
            for nid in needed
            if nid not in consts and tape.nodes[nid].op != "input"
        ]
        refs: Dict[int, int] = {nid: 0 for nid in runtime}
        for nid in runtime:
            for arg in tape.nodes[nid].args:
                if arg in refs:
                    refs[arg] += 1
        if out in refs:
            refs[out] += 1  # the output buffer survives the whole call

        self.consts = consts
        self.input_keys = sorted(
            tape.nodes[nid].key
            for nid in needed
            if tape.nodes[nid].op == "input" and nid not in consts
        )
        self._input_dtype = {
            tape.nodes[nid].key: tape.nodes[nid].dtype
            for nid in needed
            if tape.nodes[nid].op == "input" and nid not in consts
        }

        free: Dict[str, List[int]] = {"c": [], "r": []}
        slot_dtype: List[str] = []
        slot_of: Dict[int, int] = {}
        steps: List[_Step] = []

        def loc(arg: int) -> Tuple[str, object]:
            if arg in consts:
                return ("const", arg)
            node = tape.nodes[arg]
            if node.op == "input":
                return ("input", node.key)
            return ("buf", slot_of[arg])

        for nid in runtime:
            node = tape.nodes[nid]
            pool = free[node.dtype]
            if pool:
                slot = pool.pop()
            else:
                slot = len(slot_dtype)
                slot_dtype.append(node.dtype)
            slot_of[nid] = slot
            args = node.args
            steps.append(
                _Step(
                    node,
                    slot,
                    loc(args[0]),
                    loc(args[1]) if len(args) > 1 else None,
                )
            )
            for arg in args:
                if arg in refs:
                    refs[arg] -= 1
                    if refs[arg] == 0 and arg != out:
                        free[tape.nodes[arg].dtype].append(slot_of[arg])
        self.steps = steps
        self._slot_dtype = slot_dtype
        self._out_slot = slot_of.get(out)
        self._out_const = consts.get(out)

    # -- workspaces ----------------------------------------------------
    def _buffers(self, batch: int, n: int) -> List[np.ndarray]:
        # keyed by thread ident: concurrent captures on a shared plan
        # (thread executors) must not scribble over each other's buffers
        key = (threading.get_ident(), batch, n)
        with self._workspace_lock:
            bufs = self._workspaces.get(key)
            if bufs is None:
                bufs = [
                    np.empty(
                        (batch, n),
                        dtype=self._cdtype if dt == "c" else self._rdtype,
                    )
                    for dt in self._slot_dtype
                ]
                self._workspaces[key] = bufs
                while len(self._workspaces) > self.workspace_pool_size:
                    self._workspaces.pop(next(iter(self._workspaces)))
            else:
                # LRU: re-inserting keeps hot batch sizes alive
                self._workspaces.pop(key)
                self._workspaces[key] = bufs
        return bufs

    def release_workspaces(self) -> None:
        """Drop every cached workspace (reallocated on next execute)."""
        with self._workspace_lock:
            self._workspaces = {}

    def nbytes(self) -> int:
        """Constant + workspace bytes retained by this program."""
        total = sum(arr.nbytes for arr in self.consts.values())
        with self._workspace_lock:
            for bufs in self._workspaces.values():
                total += sum(buf.nbytes for buf in bufs)
        return total

    def __getstate__(self):
        # workspaces are cheap to rebuild and may hold megabytes; the
        # lock and thread-local timing are recreated on unpickle
        state = self.__dict__.copy()
        state["_workspaces"] = {}
        del state["_workspace_lock"]
        del state["_capture_tls"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._workspace_lock = threading.Lock()
        self._capture_tls = threading.local()

    # -- profiling -----------------------------------------------------
    @property
    def last_stage_seconds(self) -> Dict[str, float]:
        """The calling thread's stage breakdown for its current capture.

        Thread-local: concurrent captures on a shared program (thread
        executors) each see only their own timings.
        """
        breakdown = getattr(self._capture_tls, "stage_seconds", None)
        if breakdown is None:
            breakdown = {}
            self._capture_tls.stage_seconds = breakdown
        return breakdown

    def begin_capture(self) -> None:
        """Reset the per-capture stage breakdown."""
        self._capture_tls.stage_seconds = {}

    @contextmanager
    def stage(self, name: str):
        """Record wall time of one pipeline stage under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            breakdown = self.last_stage_seconds
            breakdown[name] = breakdown.get(name, 0.0) + elapsed
            with self._workspace_lock:
                self.stage_seconds[name] = (
                    self.stage_seconds.get(name, 0.0) + elapsed
                )

    # -- execution -----------------------------------------------------
    def execute(
        self,
        rf_envelopes: Dict[int, np.ndarray],
        lo_envelopes: Optional[Dict[int, np.ndarray]] = None,
    ) -> np.ndarray:
        """Run the tape; returns the real baseband ``(batch, n)`` matrix.

        ``rf_envelopes`` holds the DUT-output envelope arrays keyed by
        harmonic; ``lo_envelopes`` supplies the LO slots when they were
        not plan-bound (the random-path-phase regime).  The returned
        array is owned by the program's workspace and must be consumed
        before the next ``execute`` call on the same batch size.
        """
        sources = {"rf": rf_envelopes, "lo": lo_envelopes or {}}
        inputs: Dict[Tuple[str, int], np.ndarray] = {}
        batch = None
        n = None
        for key in self.input_keys:
            kind, harmonic = key
            arr = sources[kind].get(harmonic)
            if arr is None:
                raise ValueError(f"missing runtime input {key}")
            arr = np.asarray(arr)
            if self._input_dtype[key] == "r":
                arr = arr.real
            if self.precision == "float32":
                arr = arr.astype(
                    np.complex64 if np.iscomplexobj(arr) else np.float32
                )
            if arr.ndim == 2:
                batch = arr.shape[0]
            n = arr.shape[-1]
            inputs[key] = arr
        if batch is None:
            batch = 1
        if n is None:  # fully folded tape (no runtime inputs)
            out = self._out_const
            if out is None:
                raise ValueError("program has neither runtime output nor constant")
            return np.broadcast_to(out.real, (batch, out.shape[-1]))

        bufs = self._buffers(batch, n)

        def fetch(src):
            kind, ref = src
            if kind == "buf":
                return bufs[ref]
            if kind == "const":
                return self.consts[ref]
            return inputs[ref]

        result = None
        for step in self.steps:
            a = fetch(step.a)
            b = fetch(step.b) if step.b is not None else None
            result = _apply_kernel(step.node, a, b, out=bufs[step.out_slot])
        if self._out_slot is not None:
            result = bufs[self._out_slot]
        if self.precision == "float32":
            result = result.astype(np.float64)
        return result
