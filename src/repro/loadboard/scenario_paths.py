"""Degraded signature-access scenarios: on-die BIST and 1149.4 ABM paths.

The paper's framework assumes the full load board of Figure 2/3.  Real
production floors often cannot afford that access: ROADMAP item 1 asks
for two degraded front ends, each still feeding the same
signature-to-specification calibration machinery:

* :class:`BistSignaturePath` -- on-chip capture in the style of
  Negreiros et al.'s low-cost BIST: an on-die generator amplitude-
  modulates the carrier directly (no external mixer-1 chain), the DUT
  output feeds a square-law envelope detector with a video-bandwidth
  filter, and a *coarse* on-die ADC digitizes the detected envelope --
  no mixer-2 downconversion, no offset LO, few effective bits.
* :class:`AbmAccessPath` -- the DUT reached through an IEEE 1149.4
  analog-boundary-module switch network (Syri et al.): each series
  transmission gate adds a frequency-flat insertion loss at the ports,
  and each switched AT-bus node an RC pole that low-passes the captured
  baseband record.

Both expose the duck-typed board surface the runtime layer dispatches
on (``signature`` / ``signature_batch`` / ``config`` /
``overdrive_snapshot``), so calibration, the production flow, the
streaming service and the stimulus optimizer work unchanged.  The
``bist-calibration-predicts`` relation in :mod:`repro.verify` checks
that ridge calibration still predicts specs through the coarse BIST
path to a declared tolerance.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.circuits.device import RFDevice
from repro.circuits.noisefig import added_output_noise_vrms
from repro.circuits.nonlinear import PolynomialNonlinearity
from repro.circuits.parasitics import SwitchParasitics
from repro.dsp.spectral import (
    fft_magnitude_signature,
    fft_magnitude_signature_matrix,
)
from repro.dsp.waveform import PiecewiseLinearStimulus, Waveform
from repro.instruments.digitizer import BasebandDigitizer
from repro.loadboard.envelope import one_pole_lowpass
from repro.loadboard.signature_path import (
    RngList,
    SignaturePathConfig,
    SignatureTestBoard,
    resolve_rng_streams,
)

__all__ = [
    "AbmAccessPath",
    "AbmPathConfig",
    "BistPathConfig",
    "BistSignaturePath",
]


@dataclass
class BistPathConfig:
    """The on-die BIST capture chain.

    The on-die generator drives the DUT input directly with an
    amplitude-modulated carrier (``drive_scale`` volts of envelope per
    stimulus volt); the detector is a square-law diode whose video
    filter has ``detector_bandwidth_hz``; the on-die ADC is coarse --
    ``adc_bits`` defaults to 6 -- and noisier than a bench digitizer.

    lint-ranges: capture_seconds=[1e-7, 1e-3] adc_noise_vrms=[0, 1]
    lint-ranges: setup_time=[0, 1] drive_scale=[0, 10]
    """

    carrier_freq: float = 900e6
    drive_scale: float = 1.0
    detector_bandwidth_hz: float = 8e6
    adc_rate: float = 20e6
    adc_bits: Optional[int] = 6
    adc_noise_vrms: float = 2e-3
    capture_seconds: float = 5e-6
    envelope_oversample: int = 4
    include_device_noise: bool = True
    #: BIST needs no external instrument setup -- the paper's low-cost
    #: tester advantage taken to its limit
    setup_time: float = 1e-3

    def __post_init__(self):
        if self.envelope_oversample < 1:
            raise ValueError("envelope_oversample must be >= 1")
        if not (0.0 < self.detector_bandwidth_hz < self.engine_rate / 2.0):
            raise ValueError(
                "detector bandwidth must lie inside the engine Nyquist band"
            )
        if self.adc_bits is not None and self.adc_bits < 1:
            raise ValueError("adc_bits must be >= 1 or None")

    @property
    def engine_rate(self) -> float:
        """Internal envelope simulation rate."""
        return self.envelope_oversample * self.adc_rate

    # aliases letting scenario-agnostic code (the stimulus optimizer's
    # sigma_m sizing) read the capture geometry under the base
    # configuration's field names
    @property
    def digitizer_rate(self) -> float:
        return self.adc_rate

    @property
    def digitizer_noise_vrms(self) -> float:
        return self.adc_noise_vrms

    @property
    def dut_coupling(self) -> str:
        """On-die drive reaches the DUT through its matched (tuned) port."""
        return "tuned"

    def total_test_time(self) -> float:
        """Tester seconds for one BIST signature insertion."""
        return self.setup_time + self.capture_seconds


class BistSignaturePath:
    """On-die signature capture: drive -> DUT -> detector -> coarse ADC.

    The describing-function DUT model and the per-device RNG contract
    are shared with :class:`~repro.loadboard.signature_path.SignatureTestBoard`;
    only the access chain differs (no mixers, no offset LO, magnitude
    detection, coarse quantization).  ``signature_batch`` is vectorized
    over the lot and row ``i`` is bit-identical to a one-device capture
    with the same generator.
    """

    def __init__(self, config: BistPathConfig):
        self.config = config
        self._adc = BasebandDigitizer(
            sample_rate=config.adc_rate,
            bits=config.adc_bits,
            noise_vrms=config.adc_noise_vrms,
        )
        self.last_overdrive_ratio: float = 0.0
        self.last_overdrive_ratios: np.ndarray = np.zeros(0)
        self._state_lock = threading.Lock()

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_state_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._state_lock = threading.Lock()

    def _drive_record(
        self, stimulus: Union[Waveform, PiecewiseLinearStimulus]
    ) -> np.ndarray:
        """On-die drive envelope at the engine rate, padded to the capture."""
        cfg = self.config
        if hasattr(stimulus, "to_waveform"):
            wf = stimulus.to_waveform(cfg.engine_rate)
        else:
            wf = stimulus
            if wf.sample_rate != cfg.engine_rate:
                wf = wf.resample(cfg.engine_rate)
        n_needed = int(round(cfg.capture_seconds * cfg.engine_rate))
        if len(wf) < n_needed:
            wf = wf.pad_to(n_needed)
        elif len(wf) > n_needed:
            wf = Waveform(wf.samples[:n_needed], cfg.engine_rate, wf.t0)
        return cfg.drive_scale * wf.samples

    def _detected_matrix(
        self,
        devices: Sequence[RFDevice],
        stimulus: Union[Waveform, PiecewiseLinearStimulus],
        gens: RngList,
    ) -> np.ndarray:
        """Detected (video-filtered) envelope rows, one per device."""
        cfg = self.config
        u = self._drive_record(stimulus)
        amps = np.abs(u)
        peak = float(amps.max()) if len(amps) else 0.0

        polys = [PolynomialNonlinearity(*d.envelope_poly()) for d in devices]
        ratios = [
            peak / p.saturation_amplitude
            if np.isfinite(p.saturation_amplitude)
            else 0.0
            for p in polys
        ]
        with self._state_lock:
            self.last_overdrive_ratios = np.asarray(ratios)
            self.last_overdrive_ratio = float(max(ratios)) if ratios else 0.0

        # tuned coupling, exactly like the load board: the DUT's matched
        # port passes only the carrier band, so the saturating describing
        # function applies at any drive
        gain = np.empty((len(polys), len(u)))
        if peak > 0.0:
            for i, poly in enumerate(polys):
                grid, table = poly.describing_gain_table(1.01 * peak)
                gain[i] = np.interp(amps, grid, table)
        else:
            for i, poly in enumerate(polys):
                gain[i] = np.full_like(amps, poly.a1, dtype=float)
        out_env = gain * u[None, :]

        if cfg.include_device_noise and any(g is not None for g in gens):
            detected_in = out_env.astype(complex)
            for i, (device, g) in enumerate(zip(devices, gens)):
                if g is None:
                    continue
                specs = device.specs()
                sigma = added_output_noise_vrms(
                    specs.gain_db, specs.nf_db, cfg.engine_rate
                )
                if sigma > 0.0:
                    n = len(u)
                    detected_in[i] = detected_in[i] + sigma * (
                        g.normal(size=n) + 1j * g.normal(size=n)
                    )
            detected = np.abs(detected_in)
        else:
            detected = np.abs(out_env)
        return one_pole_lowpass(
            detected, cfg.engine_rate, cfg.detector_bandwidth_hz
        )

    def capture_batch(
        self,
        devices: Sequence[RFDevice],
        stimulus: Union[Waveform, PiecewiseLinearStimulus],
        rng: Optional[np.random.Generator] = None,
        *,
        rngs: Optional[RngList] = None,
    ) -> List[Waveform]:
        """One coarse-ADC record per device, in lot order."""
        cfg = self.config
        devices = list(devices)
        gens = resolve_rng_streams(rng, rngs, len(devices))
        detected = self._detected_matrix(devices, stimulus, gens)
        mat = self._adc.capture_matrix(
            detected, cfg.engine_rate, cfg.capture_seconds, gens
        )
        return [Waveform(row, cfg.adc_rate, 0.0) for row in mat]

    def capture(
        self,
        device: RFDevice,
        stimulus: Union[Waveform, PiecewiseLinearStimulus],
        rng: Optional[np.random.Generator] = None,
    ) -> Waveform:
        """One BIST acquisition (a batch of one)."""
        return self.capture_batch([device], stimulus, rngs=[rng])[0]

    def signature_batch(
        self,
        devices: Sequence[RFDevice],
        stimulus: Union[Waveform, PiecewiseLinearStimulus],
        rng: Optional[np.random.Generator] = None,
        n_bins: Optional[int] = None,
        log_scale: bool = False,
        *,
        rngs: Optional[RngList] = None,
        engine: Optional[str] = None,
    ) -> np.ndarray:
        """FFT-magnitude signatures of the detected envelopes, ``(batch, m)``.

        ``engine`` is accepted for interface compatibility; the BIST
        chain has a single implementation (there is no mixer tape to
        compile), so any requested engine runs the same path.
        """
        del engine  # single-implementation path
        cfg = self.config
        devices = list(devices)
        gens = resolve_rng_streams(rng, rngs, len(devices))
        detected = self._detected_matrix(devices, stimulus, gens)
        mat = self._adc.capture_matrix(
            detected, cfg.engine_rate, cfg.capture_seconds, gens
        )
        return fft_magnitude_signature_matrix(
            mat, n_bins=n_bins, log_scale=log_scale
        )

    def signature(
        self,
        device: RFDevice,
        stimulus: Union[Waveform, PiecewiseLinearStimulus],
        rng: Optional[np.random.Generator] = None,
        n_bins: Optional[int] = None,
        log_scale: bool = False,
    ) -> np.ndarray:
        """Capture and reduce one device to its signature vector."""
        record = self.capture(device, stimulus, rng)
        return fft_magnitude_signature(
            record, n_bins=n_bins, log_scale=log_scale
        )

    def overdrive_snapshot(self) -> Tuple[float, np.ndarray]:
        """The last capture's (peak ratio, per-device ratios), atomically."""
        with self._state_lock:
            return self.last_overdrive_ratio, self.last_overdrive_ratios


@dataclass
class AbmPathConfig:
    """An IEEE 1149.4 switched access network around the base board.

    ``n_input_switches`` / ``n_output_switches`` count the series
    transmission gates between the board and the DUT ports (typically
    two per port: the ABM gate plus the AT-bus gate); every closed
    switch adds :meth:`~repro.circuits.parasitics.SwitchParasitics.insertion_loss_db`
    against ``port_impedance_ohm``, and every *output-side* switched
    node one RC pole on the captured baseband record.  Input-side node
    poles sit at the carrier, far above the envelope band, and are
    frequency-flat there.

    lint-ranges: port_impedance_ohm=[1, 1e4]
    """

    base: SignaturePathConfig
    switch: SwitchParasitics = field(
        default_factory=lambda: SwitchParasitics(
            r_on_ohm=50.0, c_node_farads=200e-12
        )
    )
    n_input_switches: int = 2
    n_output_switches: int = 2
    port_impedance_ohm: float = 50.0

    def __post_init__(self):
        if self.n_input_switches < 0 or self.n_output_switches < 0:
            raise ValueError("switch counts must be non-negative")

    def board_config(self) -> SignaturePathConfig:
        """The base configuration with the switch losses folded in."""
        loss_db = self.switch.insertion_loss_db(self.port_impedance_ohm)
        return replace(
            self.base,
            input_loss_db=self.base.input_loss_db
            + self.n_input_switches * loss_db,
            output_loss_db=self.base.output_loss_db
            + self.n_output_switches * loss_db,
        )


class AbmAccessPath:
    """The load board reached through an ABM switch network.

    Runs the unchanged :class:`~repro.loadboard.signature_path.SignatureTestBoard`
    front end on a loss-adjusted configuration, then applies one RC pole
    per output-side switched node to the filtered baseband before the
    shared digitize stage -- the split introduced for multi-site reuse
    carries this scenario too.  Node poles above the engine Nyquist are
    invisible in the captured band and are skipped.
    """

    def __init__(self, config: AbmPathConfig):
        self.access = config
        self.board = SignatureTestBoard(config.board_config())

    @property
    def config(self) -> SignaturePathConfig:
        """The loss-adjusted board configuration (timing, rates, losses)."""
        return self.board.config

    def _bus_filtered(self, filtered: np.ndarray) -> np.ndarray:
        """Apply the output-side AT-bus node poles to the baseband rows."""
        access = self.access
        pole = access.switch.pole_hz(access.port_impedance_ohm)
        nyquist = self.board.config.engine_rate / 2.0
        if pole >= nyquist:
            return filtered
        out = filtered
        for _ in range(access.n_output_switches):
            out = one_pole_lowpass(out, self.board.config.engine_rate, pole)
        return out

    def capture_batch(
        self,
        devices: Sequence[RFDevice],
        stimulus: Union[Waveform, PiecewiseLinearStimulus],
        rng: Optional[np.random.Generator] = None,
        *,
        rngs: Optional[RngList] = None,
        engine: Optional[str] = None,
    ) -> List[Waveform]:
        """One digitized record per device, accessed through the ABM network."""
        mat = self._capture_matrix(devices, stimulus, rng, rngs, engine)
        return [
            Waveform(row, self.board.config.digitizer_rate, 0.0) for row in mat
        ]

    def _capture_matrix(
        self,
        devices: Sequence[RFDevice],
        stimulus: Union[Waveform, PiecewiseLinearStimulus],
        rng: Optional[np.random.Generator],
        rngs: Optional[RngList],
        engine: Optional[str],
    ) -> np.ndarray:
        filtered, gens = self.board.filtered_baseband_matrix(
            devices, stimulus, rng, rngs=rngs, engine=engine
        )
        return self.board.digitize_matrix(self._bus_filtered(filtered), gens)

    def capture(
        self,
        device: RFDevice,
        stimulus: Union[Waveform, PiecewiseLinearStimulus],
        rng: Optional[np.random.Generator] = None,
    ) -> Waveform:
        """One ABM-path acquisition (a batch of one)."""
        return self.capture_batch([device], stimulus, rngs=[rng])[0]

    def signature_batch(
        self,
        devices: Sequence[RFDevice],
        stimulus: Union[Waveform, PiecewiseLinearStimulus],
        rng: Optional[np.random.Generator] = None,
        n_bins: Optional[int] = None,
        log_scale: bool = False,
        *,
        rngs: Optional[RngList] = None,
        engine: Optional[str] = None,
    ) -> np.ndarray:
        """FFT-magnitude signatures through the ABM network, ``(batch, m)``."""
        mat = self._capture_matrix(devices, stimulus, rng, rngs, engine)
        return fft_magnitude_signature_matrix(
            mat, n_bins=n_bins, log_scale=log_scale
        )

    def signature(
        self,
        device: RFDevice,
        stimulus: Union[Waveform, PiecewiseLinearStimulus],
        rng: Optional[np.random.Generator] = None,
        n_bins: Optional[int] = None,
        log_scale: bool = False,
    ) -> np.ndarray:
        """Capture and reduce one device to its signature vector."""
        record = self.capture(device, stimulus, rng)
        return fft_magnitude_signature(
            record, n_bins=n_bins, log_scale=log_scale
        )

    def overdrive_snapshot(self) -> Tuple[float, np.ndarray]:
        """Delegate to the inner board (the DUT drive is the board's)."""
        return self.board.overdrive_snapshot()
