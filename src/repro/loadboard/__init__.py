"""Load-board signature test path (Figures 2 and 3 of the paper).

The load board carries the two mixers, the RF carrier distribution and the
low-pass filter that convert a baseband test stimulus to RF and the DUT
response back to a baseband signature.  Two simulation engines exist:

* :mod:`repro.loadboard.envelope` -- exact harmonic-envelope algebra that
  tracks the signal's complex envelope at every carrier harmonic; fast
  enough to sit inside the genetic optimizer's fitness loop.
* :mod:`repro.dsp.passband` -- brute-force sampled-carrier simulation used
  to cross-validate the envelope engine (see
  ``tests/loadboard/test_envelope_vs_passband.py``).
"""

from repro.loadboard.capture_compiler import (
    CompiledCaptureProgram,
    FastPathError,
    fast_path_error_bound,
)
from repro.loadboard.envelope import EnvelopeSignal, one_pole_lowpass
from repro.loadboard.scenario_paths import (
    AbmAccessPath,
    AbmPathConfig,
    BistPathConfig,
    BistSignaturePath,
)
from repro.loadboard.signature_path import (
    CapturePlan,
    SignaturePathConfig,
    SignatureTestBoard,
    simulation_config,
    hardware_config,
)
from repro.loadboard.sites import MultiSiteBoard, MultiSiteConfig

__all__ = [
    "AbmAccessPath",
    "AbmPathConfig",
    "BistPathConfig",
    "BistSignaturePath",
    "CapturePlan",
    "CompiledCaptureProgram",
    "EnvelopeSignal",
    "FastPathError",
    "MultiSiteBoard",
    "MultiSiteConfig",
    "SignaturePathConfig",
    "SignatureTestBoard",
    "fast_path_error_bound",
    "one_pole_lowpass",
    "simulation_config",
    "hardware_config",
]
