"""``python -m repro`` entry point."""

import os
import sys

from repro.cli import main

__all__: list = []

if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `python -m repro report - | head`
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(141)
