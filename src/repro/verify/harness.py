"""The verification harness: relations, config sampling, shrinking, reports.

A *relation* is a named executable invariant: a function taking a
sampled configuration dict and a harness-provided RNG, and raising
:class:`RelationViolation` when the invariant is broken.  Relations
declare the configuration space they quantify over as a dict of
:class:`Param` samplers, so the harness can (a) draw deterministic
random cases from a master seed and (b) *shrink* any failing case
toward the simplest configuration that still fails.

Determinism contract
--------------------
Every case is derived from ``(master_seed, crc32(relation name), case
index)`` through ``np.random.SeedSequence``, so a campaign is
bit-reproducible for a fixed master seed regardless of which relations
run, in which order, or how many cases other relations draw.  Relations
must consume randomness only through the ``rng`` argument the harness
passes them (enforced by the ``verify-relation-seeded`` lint rule).
"""

from __future__ import annotations

import json
import os
import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "RelationViolation",
    "check",
    "check_allclose",
    "check_array_equal",
    "Param",
    "FloatParam",
    "IntParam",
    "ChoiceParam",
    "floats",
    "log_floats",
    "integers",
    "choice",
    "booleans",
    "Relation",
    "Registry",
    "DEFAULT_REGISTRY",
    "DEFAULT_MASTER_SEED",
    "relation",
    "CaseFailure",
    "RelationReport",
    "CampaignReport",
    "run_relation",
    "run_campaign",
]

#: Default campaign master seed (the paper appeared at DATE, March 2002).
DEFAULT_MASTER_SEED = 20020304

#: Failures recorded verbatim per relation (all failures are *counted*).
MAX_RECORDED_FAILURES = 10


class RelationViolation(AssertionError):
    """A relation's invariant does not hold for one sampled configuration."""


def check(condition: bool, message: str) -> None:
    """Raise :class:`RelationViolation` with ``message`` unless ``condition``."""
    if not condition:
        raise RelationViolation(message)


def check_allclose(
    actual: np.ndarray,
    desired: np.ndarray,
    rtol: float = 1e-7,
    atol: float = 0.0,
    label: str = "value",
) -> None:
    """Elementwise closeness check that reports the worst deviation."""
    actual = np.asarray(actual, dtype=float)
    desired = np.asarray(desired, dtype=float)
    if actual.shape != desired.shape:
        raise RelationViolation(
            f"{label}: shape mismatch {actual.shape} vs {desired.shape}"
        )
    if not np.allclose(actual, desired, rtol=rtol, atol=atol):
        err = np.abs(actual - desired)
        scale = atol + rtol * np.abs(desired)
        worst = int(np.argmax(err - scale))
        raise RelationViolation(
            f"{label}: max deviation {float(err.flat[worst]):.3e} at flat "
            f"index {worst} exceeds tolerance (rtol={rtol:g}, atol={atol:g})"
        )


def check_array_equal(
    actual: np.ndarray, desired: np.ndarray, label: str = "value"
) -> None:
    """Bit-equality check (the batch/serial/parallel contract)."""
    actual = np.asarray(actual)
    desired = np.asarray(desired)
    if actual.shape != desired.shape:
        raise RelationViolation(
            f"{label}: shape mismatch {actual.shape} vs {desired.shape}"
        )
    if not np.array_equal(actual, desired):
        diff = np.abs(np.asarray(actual, dtype=float) - np.asarray(desired, dtype=float))
        raise RelationViolation(
            f"{label}: arrays are not bit-identical "
            f"(max |delta| = {float(diff.max()):.3e})"
        )


# ----------------------------------------------------------------------
# configuration-space parameters
# ----------------------------------------------------------------------
class Param:
    """One sampled dimension of a relation's configuration space.

    Subclasses implement :meth:`sample` (a deterministic draw from the
    harness RNG) and :meth:`shrink_candidates` (progressively *simpler*
    values to try while a case keeps failing; "simpler" means closer to
    the declared origin).
    """

    def sample(self, rng: np.random.Generator) -> Any:
        raise NotImplementedError

    def shrink_candidates(self, value: Any) -> Iterator[Any]:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class FloatParam(Param):
    lo: float
    hi: float
    origin: float
    log: bool = False

    def sample(self, rng: np.random.Generator) -> float:
        if self.log:
            return float(np.exp(rng.uniform(np.log(self.lo), np.log(self.hi))))
        return float(rng.uniform(self.lo, self.hi))

    def shrink_candidates(self, value: float) -> Iterator[float]:
        if value != self.origin:
            yield self.origin
            yield (value + self.origin) / 2.0
        rounded = float(f"{value:.2g}")
        if self.lo <= rounded <= self.hi and rounded != value:
            yield rounded

    def describe(self) -> str:
        kind = "log-uniform" if self.log else "uniform"
        return f"{kind}[{self.lo:g}, {self.hi:g}]"


@dataclass(frozen=True)
class IntParam(Param):
    lo: int
    hi: int
    origin: int

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self.lo, self.hi + 1))

    def shrink_candidates(self, value: int) -> Iterator[int]:
        if value != self.origin:
            yield self.origin
            mid = (value + self.origin) // 2
            if mid != value:
                yield mid
            yield value - 1 if value > self.origin else value + 1

    def describe(self) -> str:
        return f"int[{self.lo}, {self.hi}]"


@dataclass(frozen=True)
class ChoiceParam(Param):
    options: Tuple[Any, ...]

    def sample(self, rng: np.random.Generator) -> Any:
        return self.options[int(rng.integers(len(self.options)))]

    def shrink_candidates(self, value: Any) -> Iterator[Any]:
        # earlier options are simpler by declaration order
        for option in self.options:
            if option == value:
                return
            yield option

    def describe(self) -> str:
        return f"choice{self.options!r}"


def floats(lo: float, hi: float, origin: Optional[float] = None) -> Param:
    """Uniform float in ``[lo, hi]``; shrinks toward ``origin`` (default lo)."""
    if not (lo < hi):
        raise ValueError("need lo < hi")
    return FloatParam(lo=float(lo), hi=float(hi), origin=float(lo if origin is None else origin))


def log_floats(lo: float, hi: float, origin: Optional[float] = None) -> Param:
    """Log-uniform float in ``[lo, hi]`` (both positive); shrinks toward origin."""
    if not (0 < lo < hi):
        raise ValueError("need 0 < lo < hi")
    return FloatParam(
        lo=float(lo), hi=float(hi), origin=float(lo if origin is None else origin), log=True
    )


def integers(lo: int, hi: int, origin: Optional[int] = None) -> Param:
    """Uniform integer in ``[lo, hi]`` inclusive; shrinks toward origin."""
    if not (lo <= hi):
        raise ValueError("need lo <= hi")
    return IntParam(lo=int(lo), hi=int(hi), origin=int(lo if origin is None else origin))


def choice(*options: Any) -> Param:
    """One of ``options``; earlier options are considered simpler."""
    if not options:
        raise ValueError("need at least one option")
    return ChoiceParam(options=tuple(options))


def booleans() -> Param:
    """A coin flip; ``False`` is the simpler value."""
    return ChoiceParam(options=(False, True))


# ----------------------------------------------------------------------
# relations and the registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Relation:
    """A registered invariant over a sampled configuration space."""

    name: str
    fn: Callable[[Dict[str, Any], np.random.Generator], None]
    params: Dict[str, Param]
    #: the paper equation (or reproduction contract) this relation encodes
    equation: str = ""
    description: str = ""


class Registry:
    """Ordered collection of relations (the default one backs the CLI)."""

    def __init__(self) -> None:
        self._relations: Dict[str, Relation] = {}

    def register(self, rel: Relation) -> None:
        if rel.name in self._relations:
            raise ValueError(f"relation {rel.name!r} is already registered")
        self._relations[rel.name] = rel

    def names(self) -> List[str]:
        return list(self._relations)

    def __len__(self) -> int:
        return len(self._relations)

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def get(self, names: Optional[Sequence[str]] = None) -> List[Relation]:
        """Relations in registration order, optionally filtered by name."""
        if names is None:
            return list(self._relations.values())
        missing = [n for n in names if n not in self._relations]
        if missing:
            raise KeyError(
                f"unknown relation(s) {missing}; registered: {self.names()}"
            )
        return [self._relations[n] for n in names]


DEFAULT_REGISTRY = Registry()


def relation(
    name: str,
    *,
    params: Dict[str, Param],
    equation: str = "",
    description: str = "",
    registry: Optional[Registry] = None,
):
    """Decorator registering ``fn(case, rng)`` as a named relation.

    ``params`` declares the sampled configuration space; the decorated
    function receives one drawn ``case`` dict plus a harness-derived
    ``rng`` it must use for *all* of its randomness.
    """

    def decorate(fn: Callable[[Dict[str, Any], np.random.Generator], None]):
        rel = Relation(
            name=name,
            fn=fn,
            params=dict(params),
            equation=equation,
            description=description or (fn.__doc__ or "").strip().splitlines()[0]
            if (description or fn.__doc__)
            else "",
        )
        (registry if registry is not None else DEFAULT_REGISTRY).register(rel)
        return fn

    return decorate


# ----------------------------------------------------------------------
# deterministic case derivation
# ----------------------------------------------------------------------
def _case_sequences(
    rel_name: str, master_seed: int, index: int
) -> Tuple[np.random.SeedSequence, np.random.SeedSequence]:
    """(sampling, execution) seed sequences for one case.

    Keyed on the relation *name* (via CRC32), not registry order, so
    adding or filtering relations never changes another relation's cases.
    """
    tag = zlib.crc32(rel_name.encode("utf-8"))
    root = np.random.SeedSequence(entropy=(int(master_seed), tag, int(index)))
    sample_seq, exec_seq = root.spawn(2)
    return sample_seq, exec_seq


def _draw_case(params: Dict[str, Param], seq: np.random.SeedSequence) -> Dict[str, Any]:
    rng = np.random.default_rng(seq)
    return {name: params[name].sample(rng) for name in sorted(params)}


def _run_case(
    rel: Relation, values: Dict[str, Any], exec_seq: np.random.SeedSequence
) -> Optional[str]:
    """Run one case; return the violation message, or None on success.

    A fresh generator is built from ``exec_seq`` each call, so re-running
    (during shrinking) replays the identical noise streams.
    """
    rng = np.random.default_rng(exec_seq)
    try:
        rel.fn(dict(values), rng)
    except RelationViolation as exc:
        return str(exc)
    return None


def _shrink_case(
    rel: Relation,
    values: Dict[str, Any],
    message: str,
    exec_seq: np.random.SeedSequence,
    max_evals: int = 120,
) -> Tuple[Dict[str, Any], str, int]:
    """Greedy per-parameter shrink toward each Param's origin.

    Keeps a candidate simplification only if the case *still fails*; the
    execution seed is held fixed so the comparison is apples-to-apples.
    Returns ``(shrunk values, shrunk failure message, evaluations)``.
    """
    current = dict(values)
    current_message = message
    evals = 0
    improved = True
    while improved and evals < max_evals:
        improved = False
        for name in sorted(rel.params):
            for candidate in rel.params[name].shrink_candidates(current[name]):
                if candidate == current[name]:
                    continue
                trial = dict(current)
                trial[name] = candidate
                evals += 1
                trial_message = _run_case(rel, trial, exec_seq)
                if trial_message is not None:
                    current = trial
                    current_message = trial_message
                    improved = True
                    break
                if evals >= max_evals:
                    break
            if evals >= max_evals:
                break
    return current, current_message, evals


# ----------------------------------------------------------------------
# reports
# ----------------------------------------------------------------------
def _jsonable(value: Any) -> Any:
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    return value


@dataclass(frozen=True)
class CaseFailure:
    """One violated case, with its shrunk minimal counterexample."""

    case_index: int
    message: str
    config: Dict[str, Any]
    shrunk_config: Optional[Dict[str, Any]] = None
    shrunk_message: Optional[str] = None
    shrink_evaluations: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "case_index": self.case_index,
            "message": self.message,
            "config": {k: _jsonable(v) for k, v in self.config.items()},
            "shrunk_config": None
            if self.shrunk_config is None
            else {k: _jsonable(v) for k, v in self.shrunk_config.items()},
            "shrunk_message": self.shrunk_message,
            "shrink_evaluations": self.shrink_evaluations,
        }


@dataclass
class RelationReport:
    """Outcome of one relation's campaign."""

    name: str
    equation: str
    description: str
    n_cases: int
    n_failures: int = 0
    seconds: float = 0.0
    failures: List[CaseFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.n_failures == 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "equation": self.equation,
            "description": self.description,
            "n_cases": self.n_cases,
            "n_failures": self.n_failures,
            "seconds": round(self.seconds, 4),
            "ok": self.ok,
            "failures": [f.to_dict() for f in self.failures],
        }


@dataclass
class CampaignReport:
    """Outcome of a full verification campaign."""

    master_seed: int
    n_cases: int
    relations: List[RelationReport] = field(default_factory=list)
    golden_drift: Dict[str, List[str]] = field(default_factory=dict)
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.relations) and not any(
            msgs for msgs in self.golden_drift.values()
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "master_seed": self.master_seed,
            "n_cases": self.n_cases,
            "seconds": round(self.seconds, 4),
            "ok": self.ok,
            "relations": [r.to_dict() for r in self.relations],
            "golden_drift": self.golden_drift,
        }

    def write(self, path: str) -> str:
        """Write the JSON report, creating parent directories as needed."""
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    def summary(self) -> str:
        lines = []
        for rel in self.relations:
            status = "ok" if rel.ok else f"FAIL ({rel.n_failures}/{rel.n_cases})"
            lines.append(
                f"{rel.name:<36s} {rel.n_cases:>4d} cases  "
                f"{rel.seconds:6.2f} s  {status}"
            )
            for failure in rel.failures[:1]:
                shown = failure.shrunk_config or failure.config
                lines.append(f"    counterexample: {shown}")
                lines.append(f"    {failure.shrunk_message or failure.message}")
        for name, msgs in self.golden_drift.items():
            status = "ok" if not msgs else f"DRIFT ({len(msgs)})"
            lines.append(f"golden corpus {name:<22s} {status}")
            for msg in msgs[:3]:
                lines.append(f"    {msg}")
        lines.append(f"campaign {'PASSED' if self.ok else 'FAILED'} in {self.seconds:.2f} s")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# campaign execution
# ----------------------------------------------------------------------
def run_relation(
    rel: Relation,
    n_cases: int,
    master_seed: int = DEFAULT_MASTER_SEED,
    shrink: bool = True,
) -> RelationReport:
    """Run ``n_cases`` sampled configurations of one relation.

    Only the first failure is shrunk (the minimal counterexample is what
    a human debugs); later failures are recorded verbatim, up to
    :data:`MAX_RECORDED_FAILURES`, and all are counted.
    """
    if n_cases < 1:
        raise ValueError("n_cases must be >= 1")
    report = RelationReport(
        name=rel.name,
        equation=rel.equation,
        description=rel.description,
        n_cases=n_cases,
    )
    start = time.perf_counter()
    for index in range(n_cases):
        sample_seq, exec_seq = _case_sequences(rel.name, master_seed, index)
        values = _draw_case(rel.params, sample_seq)
        message = _run_case(rel, values, exec_seq)
        if message is None:
            continue
        report.n_failures += 1
        if len(report.failures) >= MAX_RECORDED_FAILURES:
            continue
        if shrink and not report.failures:
            shrunk, shrunk_message, evals = _shrink_case(
                rel, values, message, exec_seq
            )
            report.failures.append(
                CaseFailure(
                    case_index=index,
                    message=message,
                    config=values,
                    shrunk_config=shrunk,
                    shrunk_message=shrunk_message,
                    shrink_evaluations=evals,
                )
            )
        else:
            report.failures.append(
                CaseFailure(case_index=index, message=message, config=values)
            )
    report.seconds = time.perf_counter() - start
    return report


def run_campaign(
    names: Optional[Sequence[str]] = None,
    n_cases: int = 50,
    master_seed: int = DEFAULT_MASTER_SEED,
    registry: Optional[Registry] = None,
    shrink: bool = True,
    report_path: Optional[str] = None,
) -> CampaignReport:
    """Run a relation campaign over the (default) registry.

    With ``registry=None`` the built-in relation library
    (:mod:`repro.verify.relations`) is loaded into the default registry
    first.  ``report_path`` additionally writes the JSON campaign report.
    """
    if registry is None:
        # importing the library populates DEFAULT_REGISTRY exactly once
        import repro.verify.relations  # noqa: F401

        registry = DEFAULT_REGISTRY
    campaign = CampaignReport(master_seed=master_seed, n_cases=n_cases)
    start = time.perf_counter()
    for rel in registry.get(names):
        campaign.relations.append(
            run_relation(rel, n_cases=n_cases, master_seed=master_seed, shrink=shrink)
        )
    campaign.seconds = time.perf_counter() - start
    if report_path is not None:
        campaign.write(report_path)
    return campaign
