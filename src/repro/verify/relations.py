"""The relation library: the paper's invariants as executable checks.

Each relation quantifies over a sampled configuration space (device
specs, stimulus shapes, board settings) and checks one structural
invariant of the reproduction:

==============================  ========================================
relation                        invariant
==============================  ========================================
signature-lo2-phase-invariance  Eq. 5: offset-LO FFT-magnitude
                                signatures are path-phase independent
capture-batch-equivalence       batched capture == per-device capture,
                                bit for bit
compiled-capture-equivalence    compiled whole-lot program == reference
                                engine bit for bit; fast path bounded
                                or refused, never silently degraded
executor-equivalence            ``measure_signatures`` is bit-identical
                                across executor backends and chunkings
envelope-gain-linearity         a linear DUT's signature scales with its
                                small-signal gain
attenuation-monotonicity        output fixture loss monotonically
                                attenuates the signature
db-linear-roundtrip             ``repro.dsp.units`` conversions invert
noise-determinism               seeded noise replays bit-identically
spec-permutation-stability      Eqs. 6-10: spec predictions are stable
                                under signature column permutation
streaming-offline-equivalence   streamed service records ==
                                ``ProductionTestFlow.run``, bit for bit
multisite-serial-equivalence    a zero-crosstalk N-site capture ==
                                N independent single-site captures, bit
                                for bit, on every executor and engine
bist-calibration-predicts       ridge calibration predicts gain through
                                the coarse on-die BIST path to the
                                declared tolerance
==============================  ========================================

Tolerances are calibrated, not guessed: each non-exact bound sits an
order of magnitude above the invariant's measured residual (mixer
harmonics make the path only *approximately* linear in the DUT output)
and an order of magnitude below the deviation a real bug produces (the
Eq. 4 phase-sensitive regime deviates by tens of percent where the
legitimate Eq. 5 path stays under a few percent).

Every relation draws all its randomness from the harness-provided
``rng`` (see the ``verify-relation-seeded`` lint rule), so campaigns
replay exactly from the master seed.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.circuits.behavioral import BehavioralAmplifier
from repro.circuits.device import RFDevice, SpecSet
from repro.dsp.units import db, db20, dbm_to_watts, undb, undb20, watts_to_dbm
from repro.dsp.waveform import PiecewiseLinearStimulus, Waveform
from repro.loadboard.capture_compiler import (
    FastPathError,
    fast_path_error_bound,
    fast_path_quantization_bound,
)
from repro.loadboard.scenario_paths import BistPathConfig, BistSignaturePath
from repro.loadboard.signature_path import SignaturePathConfig, SignatureTestBoard
from repro.loadboard.sites import MultiSiteBoard, MultiSiteConfig
from repro.regression.linear import RidgeRegression
from repro.regression.pipeline import Pipeline
from repro.regression.scaling import StandardScaler
from repro.runtime.calibration import CalibrationModel, measure_signatures
from repro.runtime.executor import SerialExecutor, spawn_seeds
from repro.runtime.production import ProductionTestFlow
from repro.runtime.service import StreamingTestService
from repro.runtime.specs import lna_limits
from repro.verify.harness import (
    booleans,
    check,
    check_allclose,
    check_array_equal,
    choice,
    floats,
    integers,
    log_floats,
    relation,
)

__all__: list = []  # relations register by import; nothing to re-export

#: measured legit phase deviation is 3 %% median / 7 %% worst rel-L2
#: (DC-overlap of the offset image tails plus noise); the Eq. 4 bug
#: regime sits at tens of percent -- 0.15 splits the two populations wide
PHASE_TOL = 0.15
#: measured gain-linearity residual is 1e-4..1.3e-3 (mixer-2 RF harmonics)
LINEARITY_TOL = 1e-2
#: measured attenuation-scaling residual is ~5e-4
ATTENUATION_SCALE_TOL = 2e-2
#: worst gain RMSE of a 32-train/16-val BIST ridge calibration measured
#: over 20 seeded trials is 2.10 dB; a broken path (signatures carrying
#: no device information) degrades to the mean predictor at ~2.9 dB
BIST_GAIN_RMSE_TOL_DB = 2.75
#: the same populations as a skill ratio (RMSE over the mean-predictor
#: RMSE): legit worst 0.63, broken best 1.03 -- 0.85 splits them wide
BIST_GAIN_SKILL_TOL = 0.85

_CARRIER = 900e6
_CAPTURE_SECONDS = 64e-6


def _fast_config(**overrides) -> SignaturePathConfig:
    """A scaled-down signature path: full physics, 128-sample captures.

    Same topology as :func:`~repro.loadboard.signature_path.simulation_config`
    (tuned LNA, 5th-order LPF, gaussian digitizer noise) with the rates
    shrunk so one capture costs a few hundred envelope samples -- cheap
    enough for hundreds of sampled cases per campaign.
    """
    base = dict(
        carrier_freq=_CARRIER,
        carrier_power_dbm=10.0,
        lpf_cutoff_hz=0.45e6,
        lpf_order=5,
        digitizer_rate=2e6,
        digitizer_noise_vrms=1e-3,
        capture_seconds=_CAPTURE_SECONDS,
        envelope_oversample=2,
        dut_coupling="tuned",
    )
    base.update(overrides)
    return SignaturePathConfig(**base)


def _stimulus(
    rng: np.random.Generator, n_breakpoints: int, drive: float = 0.8
) -> PiecewiseLinearStimulus:
    """A random PWL stimulus spanning the capture window.

    ``drive`` bounds the breakpoint voltages.  The linearity relations
    pass a small value: the mixer-2 RF harmonics grow quadratically with
    the DUT output, so "the path is linear in the DUT" only holds in the
    small-signal regime the claim is actually about.
    """
    levels = rng.uniform(-drive, drive, size=n_breakpoints)
    return PiecewiseLinearStimulus(levels, duration=_CAPTURE_SECONDS)


def _amplifier(gain_db: float, nf_db: float, iip3_dbm: float) -> BehavioralAmplifier:
    return BehavioralAmplifier(
        center_frequency=_CARRIER, gain_db=gain_db, nf_db=nf_db, iip3_dbm=iip3_dbm
    )


def _sample_lot(rng: np.random.Generator, n: int) -> list:
    """``n`` devices with random spec spread around a nominal LNA."""
    return [
        _amplifier(
            gain_db=float(rng.uniform(8.0, 18.0)),
            nf_db=float(rng.uniform(0.5, 3.5)),
            iip3_dbm=float(rng.uniform(-12.0, -2.0)),
        )
        for _ in range(n)
    ]


def _rel_l2(a: np.ndarray, b: np.ndarray) -> float:
    """Relative L2 deviation ``||a - b|| / ||b||`` (sanitizer-safe)."""
    denom = float(np.linalg.norm(b))
    return float(np.linalg.norm(np.asarray(a) - np.asarray(b))) / max(denom, 1e-30)


class _LinearDevice(RFDevice):
    """A perfectly linear DUT (``y = a1 x``) for linearity relations.

    :class:`BehavioralAmplifier` always carries the cubic term its IIP3
    implies; gain-linearity and attenuation metamorphics need a device
    whose only parameter is its small-signal gain.
    """

    def __init__(self, gain_db: float):
        self.center_frequency = _CARRIER
        self._gain_db = float(gain_db)
        self._a1 = float(undb20(gain_db))

    def specs(self) -> SpecSet:
        return SpecSet(gain_db=self._gain_db, nf_db=0.0, iip3_dbm=100.0)

    def envelope_poly(self) -> Tuple[float, float, float]:
        return (self._a1, 0.0, 0.0)

    def process_rf(
        self, wf: Waveform, rng: Optional[np.random.Generator] = None
    ) -> Waveform:
        return Waveform(self._a1 * wf.samples, wf.sample_rate, wf.t0)


# ----------------------------------------------------------------------
# Eq. 5: offset-LO FFT-magnitude phase invariance
# ----------------------------------------------------------------------
@relation(
    "signature-lo2-phase-invariance",
    params={
        "gain_db": floats(8.0, 18.0, origin=12.0),
        "nf_db": floats(0.5, 3.5, origin=2.0),
        "iip3_dbm": floats(-12.0, -2.0, origin=-5.0),
        "path_phase_rad": floats(0.0, 2.0 * np.pi, origin=np.pi / 2.0),
        "offset_cycles": integers(36, 52, origin=44),
        "n_breakpoints": integers(3, 5, origin=3),
    },
    equation="Eq. 5",
)
def _rel_phase_invariance(case, rng):
    """Offset-LO FFT-magnitude signatures do not depend on the path phase.

    Equation 4 shows the same-LO signature scales by ``cos(phi)`` and
    nulls at quarter-wave mismatch; Equation 5's offset-LO + FFT
    magnitude removes that dependence.  We capture the same device at
    path phase 0, at a sampled fixed phase, and through the
    random-phase-per-insertion path (the hardware prototype's regime),
    and require all three signatures to agree within :data:`PHASE_TOL`.

    The invariance holds where the paper applies it: the LO offset is an
    integer number of cycles per capture and sits well above the
    stimulus baseband bandwidth, so the ``+offset`` and ``-offset``
    spectral images of the real record do not overlap (where the image
    *tails* do meet, near DC, they interfere phase-dependently -- that
    residual is what :data:`PHASE_TOL` budgets for).
    """
    device = _amplifier(case["gain_db"], case["nf_db"], case["iip3_dbm"])
    stimulus = _stimulus(rng, case["n_breakpoints"])
    offset = case["offset_cycles"] / _CAPTURE_SECONDS
    lpf = 0.9e6  # open the LPF so the offset-modulated tone passes

    ref_board = SignatureTestBoard(
        _fast_config(lo_offset_hz=offset, lpf_cutoff_hz=lpf, path_phase_rad=0.0)
    )
    reference = ref_board.signature(device, stimulus, rng=None)

    shifted_board = SignatureTestBoard(
        _fast_config(
            lo_offset_hz=offset,
            lpf_cutoff_hz=lpf,
            path_phase_rad=case["path_phase_rad"],
        )
    )
    shifted = shifted_board.signature(device, stimulus, rng=None)
    deviation = _rel_l2(shifted, reference)
    check(
        deviation <= PHASE_TOL,
        f"fixed path phase {case['path_phase_rad']:.3f} rad moved the "
        f"FFT-magnitude signature by {deviation:.1%} rel-L2 "
        f"(tolerance {PHASE_TOL:.0%}): Eq. 5 phase invariance is broken",
    )

    random_board = SignatureTestBoard(
        _fast_config(
            lo_offset_hz=offset,
            lpf_cutoff_hz=lpf,
            path_phase_rad=case["path_phase_rad"],
            random_path_phase=True,
        )
    )
    randomized = random_board.signature(device, stimulus, rng=rng)
    deviation = _rel_l2(randomized, reference)
    check(
        deviation <= PHASE_TOL,
        f"random-per-insertion path phase moved the FFT-magnitude "
        f"signature by {deviation:.1%} rel-L2 (tolerance {PHASE_TOL:.0%})",
    )


# ----------------------------------------------------------------------
# batched capture == per-device capture
# ----------------------------------------------------------------------
@relation(
    "capture-batch-equivalence",
    params={
        "n_devices": integers(1, 5, origin=1),
        "dut_coupling": choice("tuned", "wideband"),
        "digitizer_bits": choice(None, 12, 8),
        "random_path_phase": booleans(),
        "input_loss_db": floats(0.0, 2.0, origin=0.0),
        "output_loss_db": floats(0.0, 3.0, origin=0.0),
        "lo_offset_hz": choice(0.0, 100e3),
        "n_breakpoints": integers(3, 7, origin=3),
    },
    equation="reproduction contract (CapturePlan batching)",
)
def _rel_capture_batch_equivalence(case, rng):
    """``capture_batch``/``signature_batch`` equal the per-device path bit for bit.

    With one RNG stream per device, row ``i`` of a batched capture must
    be ``np.array_equal`` to capturing device ``i`` alone with the same
    stream -- across couplings, quantizers, fixture losses, and the
    random-path-phase regime.
    """
    board = SignatureTestBoard(
        _fast_config(
            dut_coupling=case["dut_coupling"],
            digitizer_bits=case["digitizer_bits"],
            random_path_phase=case["random_path_phase"],
            input_loss_db=case["input_loss_db"],
            output_loss_db=case["output_loss_db"],
            lo_offset_hz=case["lo_offset_hz"],
        )
    )
    devices = _sample_lot(rng, case["n_devices"])
    stimulus = _stimulus(rng, case["n_breakpoints"])
    seeds = spawn_seeds(rng, len(devices))

    batch_records = board.capture_batch(
        devices, stimulus, rngs=[np.random.default_rng(s) for s in seeds]
    )
    batch_sigs = board.signature_batch(
        devices, stimulus, rngs=[np.random.default_rng(s) for s in seeds]
    )
    for i, (device, seed) in enumerate(zip(devices, seeds)):
        solo_record = board.capture(device, stimulus, np.random.default_rng(seed))
        check_array_equal(
            batch_records[i].samples,
            solo_record.samples,
            label=f"capture_batch row {i}",
        )
        solo_sig = board.signature(device, stimulus, np.random.default_rng(seed))
        check_array_equal(batch_sigs[i], solo_sig, label=f"signature_batch row {i}")


# ----------------------------------------------------------------------
# the compiled whole-lot capture program
# ----------------------------------------------------------------------
@relation(
    "compiled-capture-equivalence",
    params={
        "n_devices": integers(1, 5, origin=1),
        "dut_coupling": choice("tuned", "wideband"),
        "digitizer_bits": choice(None, 12),
        "random_path_phase": booleans(),
        "lo_offset_hz": choice(0.0, 100e3),
        "n_breakpoints": integers(3, 7, origin=3),
        "backend": choice("serial", "thread:2"),
        "chunksize": integers(1, 3, origin=1),
    },
    equation="reproduction contract (compiled capture program)",
)
def _rel_compiled_capture_equivalence(case, rng):
    """The compiled engine equals the reference algebra bit for bit.

    Exact mode must be ``np.array_equal`` to the uncompiled reference --
    directly, through ``measure_signatures`` on every backend/chunking,
    and on the empty lot.  The float32/reduced-harmonic fast path must
    either stay inside its certified error budget (tuned coupling, where
    the reduction ceiling drops nothing) or refuse with
    :class:`FastPathError` (wideband coupling, whose cubic products
    populate harmonics above the ceiling) -- never silently degrade.
    """
    board = SignatureTestBoard(
        _fast_config(
            dut_coupling=case["dut_coupling"],
            digitizer_bits=case["digitizer_bits"],
            random_path_phase=case["random_path_phase"],
            lo_offset_hz=case["lo_offset_hz"],
        )
    )
    devices = _sample_lot(rng, case["n_devices"])
    stimulus = _stimulus(rng, case["n_breakpoints"])
    seeds = spawn_seeds(rng, len(devices))

    reference = board.signature_batch(
        devices,
        stimulus,
        rngs=[np.random.default_rng(s) for s in seeds],
        engine="reference",
    )
    compiled = board.signature_batch(
        devices,
        stimulus,
        rngs=[np.random.default_rng(s) for s in seeds],
        engine="compiled",
    )
    check_array_equal(compiled, reference, label="compiled exact mode")

    empty = board.signature_batch([], stimulus, rngs=[], engine="compiled")
    check(
        empty.shape == (0, reference.shape[1]),
        f"compiled empty lot shape {empty.shape} != (0, {reference.shape[1]})",
    )

    master = int(rng.integers(0, 2**63))
    measured_ref = measure_signatures(
        board, stimulus, devices, np.random.default_rng(master), engine="reference"
    )
    measured_compiled = measure_signatures(
        board,
        stimulus,
        devices,
        np.random.default_rng(master),
        executor=case["backend"],
        chunksize=case["chunksize"],
        engine="compiled",
    )
    check_array_equal(
        measured_compiled,
        measured_ref,
        label=f"compiled via {case['backend']} chunksize={case['chunksize']}",
    )

    try:
        fast = board.signature_batch(
            devices,
            stimulus,
            rngs=[np.random.default_rng(s) for s in seeds],
            engine="fast",
        )
    except FastPathError:
        check(
            case["dut_coupling"] == "wideband",
            "fast path refused a tuned capture whose reduction drops nothing",
        )
        return
    check(
        case["dut_coupling"] == "tuned",
        "fast path silently accepted a wideband capture that populates "
        "harmonics above the reduction ceiling",
    )
    plan = board.capture_plan(stimulus)
    program = next(p for key, p in plan.programs.items() if key[0] == "float32")
    bits = case["digitizer_bits"]
    lsb = 2.0 * board._digitizer.full_scale / 2.0**bits if bits else 0.0
    rel_budget = fast_path_error_bound(program.op_count)
    abs_slack = fast_path_quantization_bound(lsb, fast.shape[1])
    for i in range(fast.shape[0]):
        scale = float(np.linalg.norm(reference[i]))
        err = float(np.linalg.norm(fast[i] - reference[i]))
        check(
            err <= rel_budget * scale + abs_slack,
            f"fast-path row {i} error {err:.3e} exceeds certified budget "
            f"{rel_budget * scale + abs_slack:.3e}",
        )


# ----------------------------------------------------------------------
# measure_signatures across executor backends
# ----------------------------------------------------------------------
@relation(
    "executor-equivalence",
    params={
        "n_devices": integers(2, 6, origin=2),
        "chunksize": integers(1, 3, origin=1),
        "digitizer_bits": choice(None, 12),
        "n_breakpoints": integers(3, 6, origin=3),
    },
    equation="reproduction contract (executor determinism)",
)
def _rel_executor_equivalence(case, rng):
    """``measure_signatures`` is bit-identical for any backend and chunking.

    The serial whole-lot run is the reference; a 2-worker thread pool
    and a deliberately mis-chunked serial run must reproduce it exactly
    (the :func:`~repro.runtime.executor.spawn_seeds` contract).
    """
    board = SignatureTestBoard(_fast_config(digitizer_bits=case["digitizer_bits"]))
    devices = _sample_lot(rng, case["n_devices"])
    stimulus = _stimulus(rng, case["n_breakpoints"])
    master = int(rng.integers(0, 2**63))

    reference = measure_signatures(
        board, stimulus, devices, np.random.default_rng(master)
    )
    threaded = measure_signatures(
        board,
        stimulus,
        devices,
        np.random.default_rng(master),
        executor="thread:2",
        chunksize=case["chunksize"],
    )
    check_array_equal(threaded, reference, label="thread:2 backend")
    chunked = measure_signatures(
        board,
        stimulus,
        devices,
        np.random.default_rng(master),
        executor=SerialExecutor(),
        chunksize=case["chunksize"],
    )
    check_array_equal(
        chunked, reference, label=f"serial chunksize={case['chunksize']}"
    )


# ----------------------------------------------------------------------
# envelope-engine linearity
# ----------------------------------------------------------------------
@relation(
    "envelope-gain-linearity",
    params={
        "gain_db": floats(0.0, 20.0, origin=0.0),
        "scale": floats(1.05, 4.0, origin=1.05),
        "dut_coupling": choice("tuned", "wideband"),
        "n_breakpoints": integers(3, 7, origin=3),
    },
    equation="Eq. 1-3 (small-signal limit)",
)
def _rel_gain_linearity(case, rng):
    """Scaling a linear DUT's gain scales its noise-free signature.

    For ``y = a1 x``, signatures must satisfy ``sig(c * a1) = c *
    sig(a1)`` up to the mixer-2 RF harmonics (measured residual
    1e-4..1.3e-3; tolerance :data:`LINEARITY_TOL`).
    """
    board = SignatureTestBoard(_fast_config(dut_coupling=case["dut_coupling"]))
    stimulus = _stimulus(rng, case["n_breakpoints"], drive=0.05)
    scale = case["scale"]

    base = board.signature(_LinearDevice(case["gain_db"]), stimulus, rng=None)
    scaled_gain_db = case["gain_db"] + float(db20(scale))
    scaled = board.signature(_LinearDevice(scaled_gain_db), stimulus, rng=None)
    deviation = _rel_l2(scaled, scale * base)
    check(
        deviation <= LINEARITY_TOL,
        f"scaling a linear DUT's gain by {scale:.3f} changed the signature "
        f"nonlinearly ({deviation:.2e} rel-L2, tolerance {LINEARITY_TOL:g})",
    )


# ----------------------------------------------------------------------
# fixture-loss monotonicity
# ----------------------------------------------------------------------
@relation(
    "attenuation-monotonicity",
    params={
        "gain_db": floats(5.0, 18.0, origin=5.0),
        "loss_step_db": floats(0.5, 3.0, origin=0.5),
        "n_steps": integers(3, 5, origin=3),
        "n_breakpoints": integers(3, 6, origin=3),
    },
    equation="Eq. 1-3 (output path scaling)",
)
def _rel_attenuation_monotonicity(case, rng):
    """Output fixture loss strictly attenuates the signature.

    The signature L2 norm must fall strictly with every extra dB of
    ``output_loss_db``, and track the ``undb20(-loss)`` amplitude factor
    within :data:`ATTENUATION_SCALE_TOL` for a linear DUT.
    """
    device = _LinearDevice(case["gain_db"])
    stimulus = _stimulus(rng, case["n_breakpoints"], drive=0.05)
    losses = [i * case["loss_step_db"] for i in range(case["n_steps"])]
    norms = []
    for loss in losses:
        board = SignatureTestBoard(_fast_config(output_loss_db=loss))
        norms.append(
            float(np.linalg.norm(board.signature(device, stimulus, rng=None)))
        )
    for i in range(1, len(norms)):
        check(
            norms[i] < norms[i - 1],
            f"signature norm did not fall when output loss rose from "
            f"{losses[i - 1]:.2f} to {losses[i]:.2f} dB "
            f"({norms[i - 1]:.4e} -> {norms[i]:.4e})",
        )
        expected = float(undb20(-losses[i])) * norms[0]
        err = abs(norms[i] - expected) / max(expected, 1e-30)
        check(
            err <= ATTENUATION_SCALE_TOL,
            f"{losses[i]:.2f} dB output loss scaled the signature norm by "
            f"{norms[i] / max(norms[0], 1e-30):.5f} instead of "
            f"{expected / max(norms[0], 1e-30):.5f} "
            f"({err:.2e} relative, tolerance {ATTENUATION_SCALE_TOL:g})",
        )


# ----------------------------------------------------------------------
# dB / linear unit round trips
# ----------------------------------------------------------------------
@relation(
    "db-linear-roundtrip",
    params={
        "size": integers(1, 64, origin=1),
        "decades": floats(1.0, 6.0, origin=1.0),
    },
    equation="Eqs. 6-10 (log-domain spec arithmetic)",
)
def _rel_db_roundtrip(case, rng):
    """``repro.dsp.units`` conversions invert and agree across domains."""
    span = case["decades"] * np.log(10.0)
    x = np.exp(rng.uniform(-span, span, size=case["size"]))

    check_allclose(undb(db(x)), x, rtol=1e-12, label="undb(db(x))")
    check_allclose(undb20(db20(x)), x, rtol=1e-12, label="undb20(db20(x))")
    check_allclose(
        dbm_to_watts(watts_to_dbm(x)), x, rtol=1e-12, label="dbm->watts roundtrip"
    )
    # the amplitude and power scales must agree: 20 log10 x == 10 log10 x^2
    check_allclose(db20(x), db(x * x), rtol=1e-12, atol=1e-9, label="db20 vs db")
    # scalar paths share the array semantics
    scalar = float(x[0])
    check(
        abs(undb(db(scalar)) - scalar) <= 1e-12 * scalar,
        f"scalar undb(db({scalar!r})) does not round-trip",
    )
    check(
        watts_to_dbm(0.0) == -np.inf,
        "watts_to_dbm(0) must be -inf (an empty bin has no power)",
    )


# ----------------------------------------------------------------------
# seeded-noise determinism
# ----------------------------------------------------------------------
@relation(
    "noise-determinism",
    params={
        "n_devices": integers(1, 3, origin=1),
        "digitizer_bits": choice(None, 12, 8),
        "random_path_phase": booleans(),
        "n_breakpoints": integers(3, 6, origin=3),
    },
    equation="reproduction contract (seeded replay)",
)
def _rel_noise_determinism(case, rng):
    """Identical seeds replay identical signatures; noise is really there.

    The same master seed must reproduce a noisy lot bit for bit, the
    noise-free path must be deterministic without any seed, and a seeded
    capture must actually differ from the noise-free one (the digitizer
    noise is not silently dropped).
    """
    board = SignatureTestBoard(
        _fast_config(
            digitizer_bits=case["digitizer_bits"],
            random_path_phase=case["random_path_phase"],
        )
    )
    devices = _sample_lot(rng, case["n_devices"])
    stimulus = _stimulus(rng, case["n_breakpoints"])
    master = int(rng.integers(0, 2**63))

    first = board.signature_batch(devices, stimulus, rng=np.random.default_rng(master))
    second = board.signature_batch(devices, stimulus, rng=np.random.default_rng(master))
    check_array_equal(second, first, label="same-seed replay")

    if not case["random_path_phase"]:  # the random-phase path requires an rng
        clean_a = board.signature_batch(devices, stimulus, rng=None)
        clean_b = board.signature_batch(devices, stimulus, rng=None)
        check_array_equal(clean_b, clean_a, label="noise-free determinism")
        check(
            not np.array_equal(first, clean_a),
            "a seeded capture equals the noise-free capture: measurement "
            "noise was silently dropped",
        )


# ----------------------------------------------------------------------
# spec-prediction stability under column permutation
# ----------------------------------------------------------------------
@relation(
    "spec-permutation-stability",
    params={
        "n_train": integers(12, 30, origin=12),
        "n_features": integers(6, 24, origin=6),
        "n_val": integers(3, 8, origin=3),
        "alpha": log_floats(1e-3, 10.0, origin=1e-3),
    },
    equation="Eqs. 6-10",
)
def _rel_spec_permutation_stability(case, rng):
    """Spec predictions do not depend on signature column order.

    FFT-bin ordering is an artifact of the capture, not of the device:
    training the standardize+ridge calibration pipeline on permuted
    signature columns and predicting permuted validation signatures must
    reproduce the unpermuted predictions.
    """
    m = case["n_features"]
    x_train = rng.normal(size=(case["n_train"], m))
    weights = rng.normal(size=m)
    y_train = x_train @ weights + 0.01 * rng.normal(size=case["n_train"])
    x_val = rng.normal(size=(case["n_val"], m))
    perm = rng.permutation(m)

    plain = Pipeline([StandardScaler(), RidgeRegression(alpha=case["alpha"])])
    plain.fit(x_train, y_train)
    permuted = Pipeline([StandardScaler(), RidgeRegression(alpha=case["alpha"])])
    permuted.fit(x_train[:, perm], y_train)

    check_allclose(
        permuted.predict(x_val[:, perm]),
        plain.predict(x_val),
        rtol=1e-6,
        atol=1e-8,
        label="column-permuted spec predictions",
    )


# ----------------------------------------------------------------------
# streaming service == offline production flow
# ----------------------------------------------------------------------
def _ridge_flow(
    rng: np.random.Generator, stimulus: PiecewiseLinearStimulus
) -> ProductionTestFlow:
    """A calibrated flow on the fast path (plain ridge, no model zoo)."""
    board = SignatureTestBoard(_fast_config())
    train = _sample_lot(rng, 10)
    signatures = measure_signatures(
        board, stimulus, train, np.random.default_rng(int(rng.integers(0, 2**63)))
    )
    spec_matrix = np.vstack([d.specs().as_vector() for d in train])
    pipelines = {}
    for j, name in enumerate(SpecSet.NAMES):
        pipeline = Pipeline([StandardScaler(), RidgeRegression(alpha=1.0)])
        pipeline.fit(signatures, spec_matrix[:, j])
        pipelines[name] = pipeline
    calibration = CalibrationModel(
        spec_names=SpecSet.NAMES,
        pipelines=pipelines,
        chosen={name: "ridge_1" for name in SpecSet.NAMES},
        cv_scores={name: {"ridge_1": 0.0} for name in SpecSet.NAMES},
    )
    return ProductionTestFlow(board, stimulus, calibration, limits=lna_limits())


@relation(
    "streaming-offline-equivalence",
    params={
        "n_lots": integers(1, 3, origin=1),
        "lot_size": integers(0, 3, origin=0),
        "executor": choice("serial", "thread:2"),
        "chunksize": integers(1, 3, origin=1),
        "max_pending_lots": integers(1, 2, origin=1),
        "n_breakpoints": integers(3, 5, origin=3),
    },
    equation="reproduction contract (streaming service)",
)
def _rel_streaming_offline_equivalence(case, rng):
    """Streamed per-device records equal ``ProductionTestFlow.run`` bit for bit.

    The streaming service freezes per-device seed streams at submission
    time with the same ``spawn_seeds`` derivation the offline flow
    uses, so for the same master seed every streamed record -- raw
    signature, predicted specs, pass verdict, device and lot order --
    must be ``np.array_equal`` to the offline lot, across backends,
    chunkings, queue bounds, and empty/single-device streams.
    """
    stimulus = _stimulus(rng, case["n_breakpoints"])
    flow = _ridge_flow(rng, stimulus)
    lots = [
        (_sample_lot(rng, case["lot_size"]), int(rng.integers(0, 2**63)))
        for _ in range(case["n_lots"])
    ]

    with StreamingTestService(
        flow,
        executor=case["executor"],
        max_pending_lots=case["max_pending_lots"],
        chunksize=case["chunksize"],
    ) as service:
        for devices, seed in lots:
            service.submit(devices, np.random.default_rng(seed))
        service.close()
        streamed = list(service.records())

    by_lot = {lot_id: [] for lot_id in range(len(lots))}
    for stream_record in streamed:
        by_lot[stream_record.lot_id].append(stream_record)

    total = 0
    for lot_id, (devices, seed) in enumerate(lots):
        offline = flow.run(devices, np.random.default_rng(seed))
        records = by_lot[lot_id]
        check(
            len(records) == len(offline.records),
            f"lot {lot_id}: streamed {len(records)} records but the offline "
            f"flow produced {len(offline.records)} -- the service dropped or "
            "duplicated devices",
        )
        total += len(records)
        for stream_record, reference in zip(records, offline.records):
            record = stream_record.record
            check(
                record.device_id == reference.device_id,
                f"lot {lot_id}: streamed device_id {record.device_id} != "
                f"offline {reference.device_id} (order not preserved)",
            )
            check_array_equal(
                record.signature,
                reference.signature,
                label=f"lot {lot_id} device {reference.device_id} signature",
            )
            check_array_equal(
                record.predicted.as_vector(),
                reference.predicted.as_vector(),
                label=f"lot {lot_id} device {reference.device_id} predicted specs",
            )
            check(
                record.passed == reference.passed,
                f"lot {lot_id} device {reference.device_id}: streamed verdict "
                f"{record.passed} != offline {reference.passed}",
            )
    check(
        total == len(streamed),
        "service emitted records for lots that were never submitted",
    )


# ----------------------------------------------------------------------
# multi-site insertions == independent single-site captures
# ----------------------------------------------------------------------
@relation(
    "multisite-serial-equivalence",
    params={
        "n_sites": integers(2, 4, origin=2),
        "n_insertions": integers(1, 3, origin=1),
        "partial_last": booleans(),
        "loss_skew": booleans(),
        "digitizer_bits": choice(None, 12),
        "backend": choice("serial", "thread:2"),
        "chunksize": integers(1, 5, origin=1),
        "n_breakpoints": integers(3, 6, origin=3),
    },
    equation="reproduction contract (multi-site isolation)",
)
def _rel_multisite_serial_equivalence(case, rng):
    """A zero-crosstalk N-site capture equals N single-site captures bit for bit.

    With perfect site isolation the multi-site board is physically N
    independent copies of the Figure 2/3 path, so every signature row
    must be ``np.array_equal`` to capturing that device alone on its
    site's standalone board with the same RNG stream -- including
    partially-occupied final insertions and per-site fixture-loss skew.
    The compiled engine must match the reference algebra through the
    multi-site path, and ``measure_signatures`` must be bit-identical
    across backends and chunk sizes (the site-aligned chunking
    contract).  Finally, turning crosstalk *on* must actually change the
    signatures -- coupling silently dropped is itself a failure.
    """
    n_sites = case["n_sites"]
    n_devices = n_sites * case["n_insertions"] - int(case["partial_last"])
    skew = [0.25 * j for j in range(n_sites)] if case["loss_skew"] else None
    base_cfg = _fast_config(digitizer_bits=case["digitizer_bits"])
    board = MultiSiteBoard(
        base_cfg,
        MultiSiteConfig(
            n_sites=n_sites, crosstalk_coupling=0.0, site_loss_skew_db=skew
        ),
    )
    devices = _sample_lot(rng, n_devices)
    stimulus = _stimulus(rng, case["n_breakpoints"])
    seeds = spawn_seeds(rng, n_devices)

    multi = board.signature_batch(
        devices, stimulus, rngs=[np.random.default_rng(s) for s in seeds]
    )
    for j, site_board in enumerate(board.site_boards):
        idx = list(range(j, n_devices, n_sites))
        serial = site_board.signature_batch(
            [devices[i] for i in idx],
            stimulus,
            rngs=[np.random.default_rng(seeds[i]) for i in idx],
        )
        check_array_equal(
            multi[idx], serial, label=f"site {j} rows vs serial single-site"
        )

    reference = board.signature_batch(
        devices,
        stimulus,
        rngs=[np.random.default_rng(s) for s in seeds],
        engine="reference",
    )
    check_array_equal(multi, reference, label="multi-site compiled vs reference")

    master = int(rng.integers(0, 2**63))
    measured_ref = measure_signatures(
        board, stimulus, devices, np.random.default_rng(master)
    )
    measured = measure_signatures(
        board,
        stimulus,
        devices,
        np.random.default_rng(master),
        executor=case["backend"],
        chunksize=case["chunksize"],
    )
    check_array_equal(
        measured,
        measured_ref,
        label=(
            f"{case['backend']} chunksize={case['chunksize']} "
            "(site-aligned chunking)"
        ),
    )

    if n_devices >= 2:
        coupled_board = MultiSiteBoard(
            base_cfg,
            MultiSiteConfig(
                n_sites=n_sites, crosstalk_coupling=0.05, site_loss_skew_db=skew
            ),
        )
        coupled = coupled_board.signature_batch(
            devices, stimulus, rngs=[np.random.default_rng(s) for s in seeds]
        )
        check(
            not np.array_equal(coupled, multi),
            "5% site-to-site coupling left every signature bit-identical "
            "to the isolated capture: crosstalk is silently dropped",
        )


# ----------------------------------------------------------------------
# ridge calibration through the on-die BIST path
# ----------------------------------------------------------------------
@relation(
    "bist-calibration-predicts",
    params={
        "adc_bits": choice(6, 8),
        "n_breakpoints": integers(4, 8, origin=4),
        "backend": choice("serial", "thread:2"),
    },
    equation="Eqs. 6-10 through the BIST access path",
)
def _rel_bist_calibration_predicts(case, rng):
    """Ridge calibration predicts gain through the coarse BIST path.

    The on-die chain (AM drive, square-law detector, 6-bit ADC) is the
    paper's low-cost-tester argument taken to its limit: the signature
    is degraded but must still carry the specification information.  A
    standardize+ridge calibration trained on 32 BIST signatures must
    predict a held-out 16-device lot's gain within
    :data:`BIST_GAIN_RMSE_TOL_DB` RMSE *and* beat the train-mean
    predictor by the :data:`BIST_GAIN_SKILL_TOL` skill ratio -- a
    signature path carrying no device information degrades to the mean
    predictor (skill ~1) and fails both.
    """
    cfg = BistPathConfig(adc_bits=case["adc_bits"])
    path = BistSignaturePath(cfg)
    stimulus = PiecewiseLinearStimulus(
        rng.uniform(-0.8, 0.8, case["n_breakpoints"]),
        duration=cfg.capture_seconds,
    )
    train = _sample_lot(rng, 32)
    val = _sample_lot(rng, 16)
    train_sigs = measure_signatures(
        path,
        stimulus,
        train,
        np.random.default_rng(int(rng.integers(0, 2**63))),
        n_bins=32,
        executor=case["backend"],
    )
    val_sigs = measure_signatures(
        path,
        stimulus,
        val,
        np.random.default_rng(int(rng.integers(0, 2**63))),
        n_bins=32,
    )
    gain_train = np.array([d.specs().gain_db for d in train])
    gain_val = np.array([d.specs().gain_db for d in val])

    pipeline = Pipeline([StandardScaler(), RidgeRegression(alpha=1.0)])
    pipeline.fit(train_sigs, gain_train)
    rmse = float(np.sqrt(np.mean((pipeline.predict(val_sigs) - gain_val) ** 2)))
    baseline = float(np.sqrt(np.mean((gain_train.mean() - gain_val) ** 2)))
    check(
        rmse <= BIST_GAIN_RMSE_TOL_DB,
        f"BIST ridge calibration missed held-out gain by {rmse:.2f} dB RMSE "
        f"(declared tolerance {BIST_GAIN_RMSE_TOL_DB} dB)",
    )
    check(
        rmse <= BIST_GAIN_SKILL_TOL * baseline,
        f"BIST calibration skill {rmse / baseline:.2f} (RMSE {rmse:.2f} dB "
        f"over mean-predictor {baseline:.2f} dB) exceeds "
        f"{BIST_GAIN_SKILL_TOL}: the BIST signature carries no usable "
        "device information",
    )
