"""repro.verify: metamorphic & property-based verification harness.

The paper's framework rests on a handful of structural invariants -- the
FFT-magnitude signature is phase-robust (Eq. 5), spec predictions track
the signature through calibration (Eqs. 6-10), and the reproduction adds
its own: three execution paths (serial, executor-parallel, batched
:class:`~repro.loadboard.signature_path.CapturePlan`) that must agree
bit-for-bit.  Example-based tests spot-check those invariants at a few
hand-picked configurations; this package checks them over *randomly
sampled* configuration spaces, every run, with automatic shrinking of
any failure to a minimal counterexample:

* :mod:`repro.verify.harness` -- the ``@relation`` registry, the
  deterministic ``SeedSequence``-driven config sampler, the
  counterexample shrinker, and JSON campaign reports;
* :mod:`repro.verify.relations` -- the relation library encoding the
  paper's invariants as executable checks;
* :mod:`repro.verify.golden` -- a committed golden-signature corpus
  (``tests/golden/*.json``) with drift detection and a guarded
  ``--update-golden`` flow.

Run it with ``python -m repro verify`` (or ``make verify``); the exit
code is non-zero on any violated relation or golden drift.
"""

from __future__ import annotations

from repro.verify.golden import (
    GoldenUpdateRefused,
    check_all_corpora,
    check_corpus,
    corpus_names,
    update_golden,
)
from repro.verify.harness import (
    CampaignReport,
    CaseFailure,
    Registry,
    Relation,
    RelationReport,
    RelationViolation,
    booleans,
    check,
    check_allclose,
    check_array_equal,
    choice,
    floats,
    integers,
    log_floats,
    relation,
    run_campaign,
    run_relation,
)

__all__ = [
    "CampaignReport",
    "CaseFailure",
    "GoldenUpdateRefused",
    "Registry",
    "Relation",
    "RelationReport",
    "RelationViolation",
    "booleans",
    "check",
    "check_all_corpora",
    "check_allclose",
    "check_array_equal",
    "check_corpus",
    "choice",
    "corpus_names",
    "floats",
    "integers",
    "log_floats",
    "relation",
    "run_campaign",
    "run_relation",
    "update_golden",
]
