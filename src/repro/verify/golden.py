"""Golden-signature corpus: canonical seeded lots with drift detection.

Each corpus is one fully-seeded end-to-end run of the framework -- a
device lot, a stimulus, a board configuration, a ridge calibration --
whose validation signatures and predicted specs are committed to
``tests/golden/*.json`` together with comparison tolerances.  A campaign
(:func:`repro.verify.harness.run_campaign` via ``python -m repro
verify``) rebuilds every corpus from its seed and flags *any* numeric
drift: a change that moves these numbers is a behavior change, not a
refactor, and must be reviewed as one.

The committed numbers may legitimately change (a physics fix, a new
noise model).  :func:`update_golden` regenerates them -- but only after
the relation campaign passes, so a bug can never be frozen into the
reference data (:class:`GoldenUpdateRefused`).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.circuits.behavioral import BehavioralAmplifier
from repro.circuits.device import SpecSet
from repro.dsp.waveform import PiecewiseLinearStimulus
from repro.loadboard.capture_compiler import (
    FastPathError,
    fast_path_error_bound,
    fast_path_quantization_bound,
)
from repro.loadboard.scenario_paths import BistPathConfig, BistSignaturePath
from repro.loadboard.signature_path import SignaturePathConfig, SignatureTestBoard
from repro.loadboard.sites import MultiSiteBoard, MultiSiteConfig
from repro.regression.linear import RidgeRegression
from repro.regression.pipeline import Pipeline
from repro.regression.scaling import StandardScaler
from repro.runtime.calibration import CalibrationSession, measure_signatures
from repro.runtime.executor import spawn_seeds

__all__ = [
    "GoldenUpdateRefused",
    "build_corpus",
    "check_all_corpora",
    "check_corpus",
    "check_fast_path",
    "corpus_names",
    "golden_dir",
    "update_golden",
]

#: environment override for the corpus directory (tests use a tmp dir)
GOLDEN_DIR_ENV = "REPRO_GOLDEN_DIR"

#: signature bins kept per capture (the low-frequency, signal-bearing part)
N_BINS = 32
N_TRAIN = 16
N_VAL = 4

#: rebuild-vs-stored comparison bounds -- far above BLAS/FFT platform
#: jitter, far below any real behavior change
SIGNATURE_RTOL = 1e-6
SIGNATURE_ATOL = 1e-9
SPEC_RTOL = 1e-6
SPEC_ATOL = 1e-6


class GoldenUpdateRefused(RuntimeError):
    """Refusing to regenerate golden data while relations are failing."""


@dataclass(frozen=True)
class _CorpusSpec:
    """Recipe for one corpus: a seed, a path configuration, a board.

    ``config`` builds the path configuration (any object with a
    ``capture_seconds`` attribute) and ``board`` wraps it into the
    capture front end -- the plain single-site
    :class:`SignatureTestBoard` by default, or a scenario board like
    :class:`MultiSiteBoard` / :class:`BistSignaturePath`.

    ``fast_path`` declares the expected float32/reduced-harmonic
    behavior on this configuration: ``"bounded"`` (fast signatures stay
    inside the certified error bound against the stored exact ones),
    ``"refused"`` (the reduced harmonic ceiling would drop populated
    content, so the engine must raise :class:`FastPathError`), or
    ``None`` (the board has no compiled fast engine to validate --
    scenario paths with a single implementation).
    """

    seed: int
    description: str
    config: Callable[[], Any]
    board: Callable[[Any], Any] = SignatureTestBoard
    fast_path: Optional[str] = "bounded"


def _sim_config() -> SignaturePathConfig:
    """Scaled-down Section 4.1 setup: tuned coupling, analog digitizer."""
    return SignaturePathConfig(
        carrier_freq=900e6,
        carrier_power_dbm=10.0,
        lpf_cutoff_hz=0.45e6,
        lpf_order=5,
        digitizer_rate=2e6,
        digitizer_noise_vrms=1e-3,
        capture_seconds=64e-6,
        envelope_oversample=2,
        dut_coupling="tuned",
    )


def _hardware_config() -> SignaturePathConfig:
    """Scaled-down Section 4.2 setup: offset LO, random phase, 12-bit ADC."""
    cfg = _sim_config()
    cfg.lo_offset_hz = 100e3
    cfg.random_path_phase = True
    cfg.digitizer_bits = 12
    cfg.digitizer_noise_vrms = 2e-3
    return cfg


def _wideband_config() -> SignaturePathConfig:
    """Wideband coupling with a lossy output fixture."""
    cfg = _sim_config()
    cfg.dut_coupling = "wideband"
    cfg.output_loss_db = 1.0
    return cfg


def _multisite_board(cfg: SignaturePathConfig) -> MultiSiteBoard:
    """A dual-site board with crosstalk and site-1 loss skew."""
    return MultiSiteBoard(
        cfg,
        MultiSiteConfig(
            n_sites=2, crosstalk_coupling=0.02, site_loss_skew_db=[0.0, 0.4]
        ),
    )


_CORPORA: Dict[str, _CorpusSpec] = {
    "sim-small": _CorpusSpec(
        seed=20020101,
        description="tuned coupling, same-LO, analog digitizer (Section 4.1 regime)",
        config=_sim_config,
    ),
    "hardware-small": _CorpusSpec(
        seed=20020102,
        description="offset LO, random path phase, 12-bit ADC (Section 4.2 regime)",
        config=_hardware_config,
    ),
    "wideband-small": _CorpusSpec(
        seed=20020103,
        description="wideband coupling with 1 dB output fixture loss",
        config=_wideband_config,
        fast_path="refused",
    ),
    "multisite-small": _CorpusSpec(
        seed=20020104,
        description=(
            "dual-site load board: 2% site-to-site crosstalk, "
            "0.4 dB site-1 fixture-loss skew"
        ),
        config=_sim_config,
        board=_multisite_board,
        fast_path=None,
    ),
    "bist-small": _CorpusSpec(
        seed=20020105,
        description=(
            "on-die BIST path: AM drive, square-law detector, 6-bit ADC"
        ),
        config=BistPathConfig,
        board=BistSignaturePath,
        fast_path=None,
    ),
}


def corpus_names() -> List[str]:
    """Names of every defined golden corpus."""
    return list(_CORPORA)


def golden_dir(override: Optional[str] = None) -> str:
    """The corpus directory: explicit override, env var, or ``tests/golden``."""
    if override is not None:
        return override
    env = os.environ.get(GOLDEN_DIR_ENV)
    if env:
        return env
    here = os.path.dirname(os.path.abspath(__file__))
    # src/repro/verify -> repository root
    root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    return os.path.join(root, "tests", "golden")


def _corpus_path(name: str, directory: Optional[str] = None) -> str:
    return os.path.join(golden_dir(directory), f"{name}.json")


def _ridge_candidates() -> Dict[str, Callable[[], Pipeline]]:
    """A single deterministic calibration family.

    The full model zoo cross-validates KNN/MARS/PCA variants whose
    selection can flip on tiny score differences; the golden corpus
    pins ridge so the stored predictions exercise the capture + pipeline
    numerics, not the model-selection tie-breaking.
    """
    return {"ridge_1": lambda: Pipeline([StandardScaler(), RidgeRegression(alpha=1.0)])}


def _corpus_setup(spec: _CorpusSpec):
    """Deterministic lot / stimulus / board shared by build and checks."""
    lot_seq, stim_seq, train_seq, val_seq, cv_seq = np.random.SeedSequence(
        spec.seed
    ).spawn(5)

    lot_rng = np.random.default_rng(lot_seq)
    devices = [
        BehavioralAmplifier(
            center_frequency=900e6,
            gain_db=float(lot_rng.uniform(8.0, 18.0)),
            nf_db=float(lot_rng.uniform(0.5, 3.5)),
            iip3_dbm=float(lot_rng.uniform(-12.0, -2.0)),
        )
        for _ in range(N_TRAIN + N_VAL)
    ]
    train, val = devices[:N_TRAIN], devices[N_TRAIN:]

    cfg = spec.config()
    stim_rng = np.random.default_rng(stim_seq)
    stimulus = PiecewiseLinearStimulus(
        stim_rng.uniform(-0.8, 0.8, size=6), duration=cfg.capture_seconds
    )
    board = spec.board(cfg)
    return train, val, stimulus, board, (train_seq, val_seq, cv_seq)


def build_corpus(name: str) -> Dict:
    """Rebuild a corpus from its seed: the numbers that should be golden.

    Fully deterministic: every random draw descends from the corpus seed
    through ``SeedSequence`` children for the device lot, the stimulus,
    the two measurement passes, and the cross-validation splits.
    """
    spec = _CORPORA.get(name)
    if spec is None:
        raise KeyError(f"unknown corpus {name!r}; defined: {corpus_names()}")
    train, val, stimulus, board, seqs = _corpus_setup(spec)
    train_seq, val_seq, cv_seq = seqs

    train_sigs = measure_signatures(
        board, stimulus, train, np.random.default_rng(train_seq), n_bins=N_BINS
    )
    val_sigs = measure_signatures(
        board, stimulus, val, np.random.default_rng(val_seq), n_bins=N_BINS
    )
    spec_matrix = np.array([d.specs().as_vector() for d in train])
    session = CalibrationSession(candidates=_ridge_candidates())
    model = session.fit(train_sigs, spec_matrix, rng=np.random.default_rng(cv_seq))
    predicted = model.predict_matrix(val_sigs)

    return {
        "name": name,
        "seed": spec.seed,
        "description": spec.description,
        "n_train": N_TRAIN,
        "n_val": N_VAL,
        "n_bins": N_BINS,
        "spec_names": list(SpecSet.NAMES),
        "true_specs": [d.specs().as_vector().tolist() for d in val],
        "signatures": val_sigs.tolist(),
        "signature_tolerance": {"rtol": SIGNATURE_RTOL, "atol": SIGNATURE_ATOL},
        "predicted_specs": predicted.tolist(),
        "spec_tolerance": {"rtol": SPEC_RTOL, "atol": SPEC_ATOL},
    }


def _compare(
    label: str,
    rebuilt: np.ndarray,
    stored: np.ndarray,
    rtol: float,
    atol: float,
) -> List[str]:
    if rebuilt.shape != stored.shape:
        return [f"{label}: shape changed {stored.shape} -> {rebuilt.shape}"]
    if np.allclose(rebuilt, stored, rtol=rtol, atol=atol):
        return []
    err = np.abs(rebuilt - stored)
    worst = int(np.argmax(err))
    return [
        f"{label}: max drift {float(err.flat[worst]):.3e} at flat index "
        f"{worst} (stored {float(stored.flat[worst]):.6e}, rebuilt "
        f"{float(rebuilt.flat[worst]):.6e}; rtol={rtol:g}, atol={atol:g})"
    ]


def check_corpus(name: str, directory: Optional[str] = None) -> List[str]:
    """Rebuild one corpus and diff it against the committed file.

    Returns drift messages; an empty list means the corpus is clean.  A
    missing committed file is itself drift (run ``--update-golden``).
    """
    path = _corpus_path(name, directory)
    if not os.path.exists(path):
        return [f"{name}: golden file missing ({path}); run with --update-golden"]
    with open(path, "r", encoding="utf-8") as handle:
        stored = json.load(handle)
    rebuilt = build_corpus(name)
    messages: List[str] = []
    if stored.get("seed") != rebuilt["seed"]:
        messages.append(
            f"{name}: corpus seed changed {stored.get('seed')} -> {rebuilt['seed']}"
        )
    sig_tol = stored.get("signature_tolerance", {})
    messages += _compare(
        f"{name}: validation signatures",
        np.asarray(rebuilt["signatures"], dtype=float),
        np.asarray(stored["signatures"], dtype=float),
        rtol=float(sig_tol.get("rtol", SIGNATURE_RTOL)),
        atol=float(sig_tol.get("atol", SIGNATURE_ATOL)),
    )
    spec_tol = stored.get("spec_tolerance", {})
    messages += _compare(
        f"{name}: predicted specs",
        np.asarray(rebuilt["predicted_specs"], dtype=float),
        np.asarray(stored["predicted_specs"], dtype=float),
        rtol=float(spec_tol.get("rtol", SPEC_RTOL)),
        atol=float(spec_tol.get("atol", SPEC_ATOL)),
    )
    messages += check_fast_path(name, directory)
    return messages


def check_fast_path(name: str, directory: Optional[str] = None) -> List[str]:
    """Validate the float32/reduced-harmonic engine against a corpus.

    For a ``"bounded"`` corpus the fast validation signatures must stay
    within the compiled program's certified relative-L2 budget
    (:func:`fast_path_error_bound` on the executed op count, plus the
    ADC requantization slack of :func:`fast_path_quantization_bound`)
    of the rebuilt exact signatures -- engine vs engine, so a tampered
    golden file surfaces as *drift* (see :func:`check_corpus`), not as
    a fast-path violation.  For a ``"refused"`` corpus the engine must
    raise :class:`FastPathError` -- silently degrading on a stimulus
    that populates harmonics above the reduction ceiling is itself a
    failure.
    """
    spec = _CORPORA.get(name)
    if spec is None:
        raise KeyError(f"unknown corpus {name!r}; defined: {corpus_names()}")
    if spec.fast_path is None:  # scenario boards have no fast engine
        return []

    _, val, stimulus, board, (_, val_seq, _) = _corpus_setup(spec)
    seeds = spawn_seeds(np.random.default_rng(val_seq), len(val))
    exact = board.signature_batch(
        val,
        stimulus,
        rngs=[np.random.default_rng(s) for s in seeds],
        n_bins=N_BINS,
        engine="compiled",
    )
    try:
        fast = board.signature_batch(
            val,
            stimulus,
            rngs=[np.random.default_rng(s) for s in seeds],
            n_bins=N_BINS,
            engine="fast",
        )
    except FastPathError:
        if spec.fast_path == "refused":
            return []
        return [f"{name}: fast path unexpectedly refused a bounded corpus"]
    if spec.fast_path == "refused":
        return [
            f"{name}: fast path must refuse this configuration (its "
            f"stimulus populates harmonics above the reduction ceiling) "
            f"but it returned signatures"
        ]

    plan = board.capture_plan(stimulus)
    program = next(
        p for key, p in plan.programs.items() if key[0] == "float32"
    )
    cfg = board.config
    lsb = (
        2.0 * board._digitizer.full_scale / 2.0**cfg.digitizer_bits
        if cfg.digitizer_bits is not None
        else 0.0
    )
    rel_budget = fast_path_error_bound(program.op_count)
    abs_slack = fast_path_quantization_bound(lsb, N_BINS)
    messages: List[str] = []
    for i in range(exact.shape[0]):
        scale = float(np.linalg.norm(exact[i]))
        err = float(np.linalg.norm(fast[i] - exact[i]))
        limit = rel_budget * scale + abs_slack
        if err > limit:
            messages.append(
                f"{name}: fast-path signature row {i} error {err:.3e} "
                f"exceeds certified budget {limit:.3e} "
                f"(rel {rel_budget:.3e} x ||exact|| {scale:.3e} + "
                f"quantization slack {abs_slack:.3e})"
            )
    return messages


def check_all_corpora(directory: Optional[str] = None) -> Dict[str, List[str]]:
    """Drift messages per corpus (all empty = no drift)."""
    return {name: check_corpus(name, directory) for name in corpus_names()}


def update_golden(
    directory: Optional[str] = None,
    names: Optional[Sequence[str]] = None,
    n_cases: int = 25,
    master_seed: Optional[int] = None,
) -> List[str]:
    """Regenerate committed corpora -- refused while relations fail.

    Runs a relation campaign first and raises :class:`GoldenUpdateRefused`
    on any violation: golden data exists to pin *correct* behavior, so a
    tree that breaks the physics invariants may not redefine it.  Returns
    the paths written.
    """
    from repro.verify.harness import DEFAULT_MASTER_SEED, run_campaign

    campaign = run_campaign(
        n_cases=n_cases,
        master_seed=DEFAULT_MASTER_SEED if master_seed is None else master_seed,
    )
    if not campaign.ok:
        failing = [r.name for r in campaign.relations if not r.ok]
        raise GoldenUpdateRefused(
            f"relation campaign failed ({', '.join(failing)}); fix the "
            f"violations before regenerating golden data"
        )
    target = golden_dir(directory)
    os.makedirs(target, exist_ok=True)
    written: List[str] = []
    for name in names if names is not None else corpus_names():
        corpus = build_corpus(name)
        path = _corpus_path(name, target)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(corpus, handle, indent=2, sort_keys=True)
            handle.write("\n")
        written.append(path)
    return written
