"""Baseband digitizer model.

Captures the downconverted signature response.  The simulation experiment
of the paper samples at 20 MHz; the hardware experiment digitizes at
1 MHz for 5 ms.  The model includes input-referred noise (the paper adds
1 mV gaussian noise to its simulated signatures), ADC quantization and
optional sampling-clock jitter.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.dsp.noise import add_awgn, quantize, sample_jitter
from repro.dsp.waveform import Waveform

__all__ = ["BasebandDigitizer"]


class BasebandDigitizer:
    """ADC front end for signature capture.

    Parameters
    ----------
    sample_rate:
        Capture rate in Hz.
    bits:
        ADC resolution; ``None`` disables quantization (ideal converter).
    full_scale:
        Input range is +/- ``full_scale`` volts.
    noise_vrms:
        Input-referred additive gaussian noise (default 1 mV, the paper's
        value).
    jitter_rms:
        RMS aperture jitter in seconds (0 disables).
    """

    def __init__(
        self,
        sample_rate: float,
        bits: Optional[int] = 12,
        full_scale: float = 1.0,
        noise_vrms: float = 1e-3,
        jitter_rms: float = 0.0,
    ):
        if not (sample_rate > 0):
            raise ValueError("sample_rate must be positive")
        if bits is not None and bits < 1:
            raise ValueError("bits must be >= 1 or None")
        if not (full_scale > 0):
            raise ValueError("full_scale must be positive")
        if noise_vrms < 0 or jitter_rms < 0:
            raise ValueError("noise and jitter must be non-negative")
        self.sample_rate = float(sample_rate)
        self.bits = bits
        self.full_scale = float(full_scale)
        self.noise_vrms = float(noise_vrms)
        self.jitter_rms = float(jitter_rms)

    def capture(
        self,
        wf: Waveform,
        duration: Optional[float] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> Waveform:
        """Digitize a record.

        The input is (optionally) jittered, resampled to the digitizer
        rate, noise-corrupted, quantized and truncated to ``duration``
        seconds.
        """
        out = wf
        if self.jitter_rms > 0.0 and rng is not None:
            out = sample_jitter(out, self.jitter_rms, rng)
        if out.sample_rate != self.sample_rate:
            out = out.resample(self.sample_rate)
        if duration is not None:
            n = int(round(duration * self.sample_rate))
            if n < 1:
                raise ValueError("capture duration shorter than one sample")
            if n < len(out):
                out = Waveform(out.samples[:n], self.sample_rate, out.t0)
        if self.noise_vrms > 0.0 and rng is not None:
            out = add_awgn(out, self.noise_vrms, rng)
        if self.bits is not None:
            out = quantize(out, self.bits, self.full_scale)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        bits = "ideal" if self.bits is None else f"{self.bits}-bit"
        return (
            f"BasebandDigitizer(fs={self.sample_rate:.3g} Hz, {bits}, "
            f"noise={self.noise_vrms * 1e3:.3g} mV)"
        )
