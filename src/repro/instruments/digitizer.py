"""Baseband digitizer model.

Captures the downconverted signature response.  The simulation experiment
of the paper samples at 20 MHz; the hardware experiment digitizes at
1 MHz for 5 ms.  The model includes input-referred noise (the paper adds
1 mV gaussian noise to its simulated signatures), ADC quantization and
optional sampling-clock jitter.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.dsp.noise import add_awgn, quantize, quantize_array, sample_jitter
from repro.dsp.waveform import Waveform

__all__ = ["BasebandDigitizer"]


class BasebandDigitizer:
    """ADC front end for signature capture.

    Parameters
    ----------
    sample_rate:
        Capture rate in Hz.
    bits:
        ADC resolution; ``None`` disables quantization (ideal converter).
    full_scale:
        Input range is +/- ``full_scale`` volts.
    noise_vrms:
        Input-referred additive gaussian noise (default 1 mV, the paper's
        value).
    jitter_rms:
        RMS aperture jitter in seconds (0 disables).
    """

    def __init__(
        self,
        sample_rate: float,
        bits: Optional[int] = 12,
        full_scale: float = 1.0,
        noise_vrms: float = 1e-3,
        jitter_rms: float = 0.0,
    ):
        if not (sample_rate > 0):
            raise ValueError("sample_rate must be positive")
        if bits is not None and bits < 1:
            raise ValueError("bits must be >= 1 or None")
        if not (full_scale > 0):
            raise ValueError("full_scale must be positive")
        if noise_vrms < 0 or jitter_rms < 0:
            raise ValueError("noise and jitter must be non-negative")
        self.sample_rate = float(sample_rate)
        self.bits = bits
        self.full_scale = float(full_scale)
        self.noise_vrms = float(noise_vrms)
        self.jitter_rms = float(jitter_rms)

    def capture(
        self,
        wf: Waveform,
        duration: Optional[float] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> Waveform:
        """Digitize a record.

        The input is (optionally) jittered, resampled to the digitizer
        rate, noise-corrupted, quantized and truncated to ``duration``
        seconds.
        """
        out = wf
        if self.jitter_rms > 0.0 and rng is not None:
            out = sample_jitter(out, self.jitter_rms, rng)
        if out.sample_rate != self.sample_rate:
            out = out.resample(self.sample_rate)
        if duration is not None:
            n = int(round(duration * self.sample_rate))
            if n < 1:
                raise ValueError("capture duration shorter than one sample")
            if n < len(out):
                out = Waveform(out.samples[:n], self.sample_rate, out.t0)
        if self.noise_vrms > 0.0 and rng is not None:
            out = add_awgn(out, self.noise_vrms, rng)
        if self.bits is not None:
            out = quantize(out, self.bits, self.full_scale)
        return out

    def capture_matrix(
        self,
        samples: np.ndarray,
        sample_rate: float,
        duration: Optional[float] = None,
        rngs: Optional[Sequence[Optional[np.random.Generator]]] = None,
        t0: float = 0.0,
    ) -> np.ndarray:
        """Digitize a ``(batch, n)`` matrix of records, one row per device.

        Applies the same jitter / resample / truncate / noise / quantize
        chain as :meth:`capture`, with ``rngs[i]`` supplying row ``i``'s
        measurement noise.  Row ``i`` of the result is bit-identical to
        ``capture(Waveform(samples[i], sample_rate, t0), duration,
        rngs[i])`` -- the vectorized steps are elementwise along the last
        axis, and the per-row RNG draws happen in the same order as the
        serial path.
        """
        mat = np.asarray(samples, dtype=float)
        if mat.ndim != 2:
            raise ValueError("samples must be a (batch, n) matrix")
        n_rows, n = mat.shape
        if rngs is None:
            rngs = [None] * n_rows
        if len(rngs) != n_rows:
            raise ValueError("need one rng (or None) per batch row")
        t = t0 + np.arange(n) / sample_rate
        if self.jitter_rms > 0.0 and n:
            jittered_rows = np.array(mat, copy=True)
            for i, rng in enumerate(rngs):
                if rng is not None:
                    inst = t + rng.normal(0.0, self.jitter_rms, size=n)
                    inst = np.clip(inst, t[0], t[-1])
                    jittered_rows[i] = np.interp(inst, t, mat[i])
            mat = jittered_rows
        if sample_rate != self.sample_rate:
            n_new = max(1, int(round(n / sample_rate * self.sample_rate)))
            new_t = t0 + np.arange(n_new) / self.sample_rate
            step = int(round(sample_rate / self.sample_rate))
            decimated = mat[:, ::step][:, :n_new] if step >= 1 else None
            if (
                decimated is not None
                and decimated.shape[-1] == n_new
                and np.array_equal(new_t, t[::step][:n_new])
            ):
                # integer decimation whose target grid coincides bitwise
                # with a stride of the source grid: interpolation at an
                # exact knot returns that knot's sample, so the strided
                # copy equals the interp loop without touching every row
                mat = np.ascontiguousarray(decimated)
            else:
                resampled = np.empty((n_rows, n_new))
                for i in range(n_rows):
                    resampled[i] = np.interp(new_t, t, mat[i])
                mat = resampled
        if duration is not None:
            n_keep = int(round(duration * self.sample_rate))
            if n_keep < 1:
                raise ValueError("capture duration shorter than one sample")
            if n_keep < mat.shape[-1]:
                mat = mat[:, :n_keep]
        if self.noise_vrms > 0.0:
            # per-row draws stay in serial order (the RNG contract); only
            # the add is batched, which is elementwise per row and thus
            # value-identical to adding row by row
            noise = np.zeros_like(mat)
            drew = False
            for i, rng in enumerate(rngs):
                if rng is not None:
                    noise[i] = rng.normal(
                        0.0, self.noise_vrms, size=mat.shape[-1]
                    )
                    drew = True
            mat = mat + noise if drew else np.array(mat, copy=True)
        if self.bits is not None:
            mat = quantize_array(mat, self.bits, self.full_scale)
        return mat

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        bits = "ideal" if self.bits is None else f"{self.bits}-bit"
        return (
            f"BasebandDigitizer(fs={self.sample_rate:.3g} Hz, {bits}, "
            f"noise={self.noise_vrms * 1e3:.3g} mV)"
        )
