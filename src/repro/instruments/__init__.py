"""ATE instrumentation substrate.

Two tester classes are modeled, mirroring the paper's cost argument:

* the **conventional RF ATE** -- network analyzer, noise-figure meter and
  spectrum analyzer running one parametric test per specification, each
  with setup overhead (:mod:`repro.instruments.ate`);
* the **low-cost tester** -- just an arbitrary waveform generator, an RF
  signal generator for the carrier, and a baseband digitizer
  (:mod:`repro.instruments.awg`, :mod:`repro.instruments.rf_source`,
  :mod:`repro.instruments.digitizer`), which together with the load board
  of :mod:`repro.loadboard` capture the signature in a single acquisition.
"""

from repro.instruments.awg import ArbitraryWaveformGenerator
from repro.instruments.digitizer import BasebandDigitizer
from repro.instruments.rf_source import RFSignalGenerator
from repro.instruments.network_analyzer import GainAnalyzer
from repro.instruments.noise_meter import NoiseFigureMeter
from repro.instruments.spectrum_analyzer import SpectrumAnalyzer, TwoToneIP3Result
from repro.instruments.ate import (
    ConventionalRFATE,
    ConventionalTestResult,
    TestTimeBreakdown,
)

__all__ = [
    "ArbitraryWaveformGenerator",
    "BasebandDigitizer",
    "RFSignalGenerator",
    "GainAnalyzer",
    "NoiseFigureMeter",
    "SpectrumAnalyzer",
    "TwoToneIP3Result",
    "ConventionalRFATE",
    "ConventionalTestResult",
    "TestTimeBreakdown",
]
