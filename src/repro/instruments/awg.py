"""Arbitrary waveform generator model.

The low-cost tester's stimulus source (Section 1: "a RF signal generator,
a baseband digitizer and an arbitrary waveform generator").  The AWG takes
the optimized PWL stimulus and produces the physical baseband record,
including the DAC's quantization, full-scale clipping and output noise.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.dsp.noise import add_awgn, quantize
from repro.dsp.waveform import PiecewiseLinearStimulus, Waveform

__all__ = ["ArbitraryWaveformGenerator"]


class ArbitraryWaveformGenerator:
    """Baseband AWG with finite resolution and full-scale range.

    Parameters
    ----------
    sample_rate:
        DAC update rate, Hz.
    bits:
        DAC resolution (default 12, typical of low-cost instruments).
    full_scale:
        Output range is +/- ``full_scale`` volts.
    output_noise_vrms:
        Broadband additive output noise.
    """

    def __init__(
        self,
        sample_rate: float,
        bits: int = 12,
        full_scale: float = 1.0,
        output_noise_vrms: float = 0.0,
    ):
        if not (sample_rate > 0):
            raise ValueError("sample_rate must be positive")
        if bits < 1:
            raise ValueError("bits must be >= 1")
        if not (full_scale > 0):
            raise ValueError("full_scale must be positive")
        if output_noise_vrms < 0:
            raise ValueError("output_noise_vrms must be non-negative")
        self.sample_rate = float(sample_rate)
        self.bits = int(bits)
        self.full_scale = float(full_scale)
        self.output_noise_vrms = float(output_noise_vrms)

    def play(
        self,
        stimulus: PiecewiseLinearStimulus,
        rng: Optional[np.random.Generator] = None,
    ) -> Waveform:
        """Render a PWL stimulus into a physical output record."""
        wf = stimulus.to_waveform(self.sample_rate)
        wf = quantize(wf, self.bits, self.full_scale)
        if self.output_noise_vrms > 0.0 and rng is not None:
            wf = add_awgn(wf, self.output_noise_vrms, rng)
        return wf

    def play_samples(
        self,
        samples: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> Waveform:
        """Render raw sample data (already at the AWG rate)."""
        wf = Waveform(np.asarray(samples, dtype=float), self.sample_rate)
        wf = quantize(wf, self.bits, self.full_scale)
        if self.output_noise_vrms > 0.0 and rng is not None:
            wf = add_awgn(wf, self.output_noise_vrms, rng)
        return wf

    @property
    def lsb(self) -> float:
        """One DAC step in volts."""
        return 2.0 * self.full_scale / 2**self.bits

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ArbitraryWaveformGenerator(fs={self.sample_rate:.3g} Hz, "
            f"{self.bits}-bit, +/-{self.full_scale:.3g} V)"
        )
