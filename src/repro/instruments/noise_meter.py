"""Noise-figure meter (the conventional ATE's "Noise figure test").

Implements the Y-factor method used by real NF meters: drive the DUT with
a calibrated noise source in its cold (kT0) and hot (kT0 * (1 + ENR))
states, measure the output noise powers, and compute
``F = ENR / (Y - 1)`` from the power ratio ``Y``.

The measurement goes through the DUT's real signal path, so the finite
record length produces genuine estimator variance -- the paper's training
specifications carry exactly this kind of measurement error.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.device import RFDevice
from repro.circuits.noisefig import enr_db_to_ratio, y_factor_nf_db
from repro.dsp.noise import thermal_noise_vrms
from repro.dsp.sources import white_noise

__all__ = ["NoiseFigureMeter"]


class NoiseFigureMeter:
    """Y-factor noise-figure measurement.

    Parameters
    ----------
    enr_db:
        Excess-noise ratio of the noise source (15 dB is typical).
    bandwidth_hz:
        Measurement noise bandwidth.
    record_seconds:
        Length of each hot/cold record.
    n_averages:
        Number of hot/cold record pairs averaged.
    setup_time / measure_time:
        Seconds charged by the test-time model.
    """

    def __init__(
        self,
        enr_db: float = 15.0,
        bandwidth_hz: float = 10e6,
        record_seconds: float = 100e-6,
        n_averages: int = 8,
        setup_time: float = 0.150,
        measure_time: float = 0.250,
    ):
        if bandwidth_hz <= 0 or record_seconds <= 0:
            raise ValueError("bandwidth and record length must be positive")
        if n_averages < 1:
            raise ValueError("n_averages must be >= 1")
        self.enr_db = float(enr_db)
        self.bandwidth_hz = float(bandwidth_hz)
        self.record_seconds = float(record_seconds)
        self.n_averages = int(n_averages)
        self.setup_time = float(setup_time)
        self.measure_time = float(measure_time)

    def measure_nf_db(self, device: RFDevice, rng: np.random.Generator) -> float:
        """Measure the DUT noise figure.

        ``rng`` is required: a noise measurement without noise is
        meaningless.
        """
        sample_rate = 2.0 * self.bandwidth_hz
        cold_vrms = thermal_noise_vrms(self.bandwidth_hz)
        hot_vrms = cold_vrms * np.sqrt(1.0 + enr_db_to_ratio(self.enr_db))
        p_hot = 0.0
        p_cold = 0.0
        for _ in range(self.n_averages):
            cold_in = white_noise(self.record_seconds, sample_rate, cold_vrms, rng)
            hot_in = white_noise(self.record_seconds, sample_rate, hot_vrms, rng)
            p_cold += device.process_rf(cold_in, rng).rms() ** 2
            p_hot += device.process_rf(hot_in, rng).rms() ** 2
        y = p_hot / p_cold
        return y_factor_nf_db(y, self.enr_db)

    def total_time(self) -> float:
        """Seconds of tester time this test consumes."""
        return self.setup_time + self.measure_time
