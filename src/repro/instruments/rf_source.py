"""RF signal generator model.

Supplies the carrier for the load-board mixers (10 dBm at 900 MHz in the
paper's simulation experiment).  Models amplitude error and a simple
phase-noise process.  Besides generating physical passband records for
the brute-force simulator, the source also exposes its amplitude/phase
directly for the fast envelope engine.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.dsp.sources import dbm_to_vpeak
from repro.dsp.waveform import Waveform

__all__ = ["RFSignalGenerator"]


class RFSignalGenerator:
    """A CW RF source with level error and phase noise.

    Parameters
    ----------
    frequency:
        Carrier frequency, Hz.
    power_dbm:
        Nominal output power into 50 ohms.
    level_error_db_rms:
        Gaussian run-to-run output-level error in dB (tester variation).
    phase_noise_rad_rms:
        RMS of a slow random phase wander across the record.
    """

    def __init__(
        self,
        frequency: float,
        power_dbm: float = 10.0,
        level_error_db_rms: float = 0.0,
        phase_noise_rad_rms: float = 0.0,
    ):
        if not (frequency > 0):
            raise ValueError("frequency must be positive")
        if level_error_db_rms < 0 or phase_noise_rad_rms < 0:
            raise ValueError("error magnitudes must be non-negative")
        self.frequency = float(frequency)
        self.power_dbm = float(power_dbm)
        self.level_error_db_rms = float(level_error_db_rms)
        self.phase_noise_rad_rms = float(phase_noise_rad_rms)

    def realized_amplitude_phase(
        self, rng: Optional[np.random.Generator] = None
    ) -> Tuple[float, float]:
        """One run's carrier amplitude (V peak) and phase offset (rad).

        Used by the envelope-domain signature engine, which represents the
        carrier analytically rather than as samples.
        """
        level_db = self.power_dbm
        phase = 0.0
        if rng is not None:
            if self.level_error_db_rms > 0.0:
                level_db += rng.normal(0.0, self.level_error_db_rms)
            if self.phase_noise_rad_rms > 0.0:
                phase = rng.normal(0.0, self.phase_noise_rad_rms)
        return dbm_to_vpeak(level_db), phase

    def generate(
        self,
        duration: float,
        sample_rate: float,
        rng: Optional[np.random.Generator] = None,
        phase: float = 0.0,
    ) -> Waveform:
        """Physical passband carrier record (for the brute-force simulator)."""
        if sample_rate < 2.0 * self.frequency:
            raise ValueError(
                f"sample rate {sample_rate:.3g} Hz cannot represent a "
                f"{self.frequency:.3g} Hz carrier"
            )
        amplitude, phi0 = self.realized_amplitude_phase(rng)
        n = max(1, int(round(duration * sample_rate)))
        t = np.arange(n) / sample_rate
        total_phase = 2.0 * math.pi * self.frequency * t + phase + phi0
        if self.phase_noise_rad_rms > 0.0 and rng is not None:
            # slow random-walk phase wander, normalized to the target RMS
            walk = np.cumsum(rng.normal(0.0, 1.0, size=n))
            walk_rms = float(np.sqrt(np.mean(walk**2)))
            if walk_rms > 0:
                total_phase = total_phase + walk * (self.phase_noise_rad_rms / walk_rms)
        return Waveform(amplitude * np.sin(total_phase), sample_rate)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RFSignalGenerator({self.frequency / 1e6:.6g} MHz, "
            f"{self.power_dbm:+.1f} dBm)"
        )
