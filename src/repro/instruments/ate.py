"""Conventional RF ATE: the baseline tester the paper replaces.

Figure 1 (left): conventional testing runs one parametric test per
specification -- gain test, noise-figure test, IIP3 test, 1 dB compression
test -- each with its own instrument setup.  :class:`ConventionalRFATE`
composes the instrument models and charges each test's setup and measure
time, producing both the measured specifications and the test-time
breakdown the economics model consumes.

The same class plays the *calibration* role in the signature flow
(Figure 5): the training devices' specifications are measured once on
this expensive tester, after which production runs on the low-cost
tester alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.circuits.device import RFDevice, SpecSet
from repro.instruments.network_analyzer import GainAnalyzer
from repro.instruments.noise_meter import NoiseFigureMeter
from repro.instruments.spectrum_analyzer import SpectrumAnalyzer

__all__ = ["TestTimeBreakdown", "ConventionalTestResult", "ConventionalRFATE"]


@dataclass
class TestTimeBreakdown:
    """Per-test time accounting for one device insertion."""

    entries: List[Tuple[str, float, float]] = field(default_factory=list)

    def add(self, name: str, setup: float, measure: float) -> None:
        if setup < 0 or measure < 0:
            raise ValueError("times must be non-negative")
        self.entries.append((name, setup, measure))

    @property
    def setup_total(self) -> float:
        return sum(s for _, s, _ in self.entries)

    @property
    def measure_total(self) -> float:
        return sum(m for _, _, m in self.entries)

    @property
    def total(self) -> float:
        return self.setup_total + self.measure_total

    def as_dict(self) -> Dict[str, float]:
        return {name: setup + measure for name, setup, measure in self.entries}


@dataclass(frozen=True)
class ConventionalTestResult:
    """Outcome of a full conventional test insertion."""

    specs: SpecSet
    time: TestTimeBreakdown
    p1db_dbm: Optional[float] = None


class ConventionalRFATE:
    """The million-dollar tester: sequential parametric spec tests.

    Parameters
    ----------
    gain_analyzer, noise_meter, spectrum_analyzer:
        Instrument models; defaults are representative of RF production
        test programs.
    include_p1db:
        Whether the insertion also runs the swept 1 dB compression test
        (Figure 1 lists it; it is the slowest test by far).
    """

    def __init__(
        self,
        gain_analyzer: Optional[GainAnalyzer] = None,
        noise_meter: Optional[NoiseFigureMeter] = None,
        spectrum_analyzer: Optional[SpectrumAnalyzer] = None,
        include_p1db: bool = False,
    ):
        self.gain_analyzer = gain_analyzer or GainAnalyzer()
        self.noise_meter = noise_meter or NoiseFigureMeter()
        self.spectrum_analyzer = spectrum_analyzer or SpectrumAnalyzer()
        self.include_p1db = include_p1db
        #: time charged for the compression sweep when enabled (a swept
        #: test re-levels the source at every point)
        self.p1db_setup_time = 0.120
        self.p1db_measure_time = 0.500

    def test_device(
        self, device: RFDevice, rng: np.random.Generator
    ) -> ConventionalTestResult:
        """Run the full conventional spec-test suite on one device."""
        time = TestTimeBreakdown()

        gain_db = self.gain_analyzer.measure_gain_db(device, rng=rng)
        time.add(
            "gain", self.gain_analyzer.setup_time, self.gain_analyzer.measure_time
        )

        nf_db = self.noise_meter.measure_nf_db(device, rng)
        time.add(
            "noise_figure", self.noise_meter.setup_time, self.noise_meter.measure_time
        )

        iip3_dbm = self.spectrum_analyzer.measure_iip3_dbm(device, rng)
        time.add(
            "iip3",
            self.spectrum_analyzer.setup_time,
            self.spectrum_analyzer.measure_time,
        )

        p1db = None
        if self.include_p1db:
            p1db = self.spectrum_analyzer.measure_p1db_dbm(device, rng=rng)
            time.add("p1db", self.p1db_setup_time, self.p1db_measure_time)

        specs = SpecSet(gain_db=gain_db, nf_db=nf_db, iip3_dbm=iip3_dbm)
        return ConventionalTestResult(specs=specs, time=time, p1db_dbm=p1db)

    def insertion_time(self) -> float:
        """Seconds per device without running anything (for planning)."""
        total = (
            self.gain_analyzer.total_time()
            + self.noise_meter.total_time()
            + self.spectrum_analyzer.total_time()
        )
        if self.include_p1db:
            total += self.p1db_setup_time + self.p1db_measure_time
        return total
