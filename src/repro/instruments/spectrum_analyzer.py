"""Spectrum-analyzer instrument: two-tone IIP3 and compression tests.

Covers the conventional ATE's "IIP3 test" and "1dB compression test" of
Figure 1.  Both are implemented as genuine signal-path measurements: the
stimulus records pass through the DUT's ``process_rf`` and the products
are read off the output spectrum, exactly like a bench measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.circuits.device import RFDevice
from repro.dsp.sources import dbm_to_vpeak, tone, two_tone
from repro.dsp.spectral import amplitude_spectrum
from repro.dsp.units import db20

__all__ = ["TwoToneIP3Result", "SpectrumAnalyzer"]


@dataclass(frozen=True)
class TwoToneIP3Result:
    """Details of a two-tone intercept measurement."""

    iip3_dbm: float
    fundamental_out_dbm: float
    im3_out_dbm: float
    tone_power_dbm: float
    f1: float
    f2: float

    @property
    def oip3_dbm(self) -> float:
        """Output-referred intercept (IIP3 + gain)."""
        gain_db = self.fundamental_out_dbm - self.tone_power_dbm
        return self.iip3_dbm + gain_db


class SpectrumAnalyzer:
    """Two-tone IIP3 and swept-power compression measurements.

    Parameters
    ----------
    tone_power_dbm:
        Per-tone stimulus power for the IP3 test.  High enough that the
        IM3 products clear the noise floor, low enough to avoid
        higher-order contamination (-20 dBm suits the LNA).
    tone_offset_hz:
        Spacing between the two tones (the paper uses tones at the design
        frequency and 20 MHz above it for its 900 MHz LNA).
    repeatability_db:
        1-sigma repeatability added to each reported power.
    setup_time / measure_time:
        Seconds charged by the test-time model (per test).
    """

    def __init__(
        self,
        tone_power_dbm: float = -20.0,
        tone_offset_hz: float = 20e6,
        repeatability_db: float = 0.05,
        setup_time: float = 0.120,
        measure_time: float = 0.200,
    ):
        if tone_offset_hz <= 0:
            raise ValueError("tone offset must be positive")
        if repeatability_db < 0:
            raise ValueError("repeatability must be non-negative")
        self.tone_power_dbm = float(tone_power_dbm)
        self.tone_offset_hz = float(tone_offset_hz)
        self.repeatability_db = float(repeatability_db)
        self.setup_time = float(setup_time)
        self.measure_time = float(measure_time)

    # ------------------------------------------------------------------
    # IIP3
    # ------------------------------------------------------------------
    def measure_iip3(
        self,
        device: RFDevice,
        rng: Optional[np.random.Generator] = None,
    ) -> TwoToneIP3Result:
        """Two-tone intercept measurement.

        ``IIP3 = P_in + (P_fund - P_IM3) / 2`` with all powers in dB(m).
        """
        f1 = device.center_frequency
        f2 = f1 + self.tone_offset_hz
        f_im3 = 2.0 * f2 - f1  # upper IM3 product
        # sample fast enough that 3rd-order products do not alias
        sample_rate = 8.0 * f_im3
        # record long enough to separate tones by several FFT bins
        duration = 64.0 / self.tone_offset_hz
        stimulus = two_tone(
            f1, f2, duration, sample_rate, power_dbm_each=self.tone_power_dbm
        )
        response = device.process_rf(stimulus, rng)
        spectrum = amplitude_spectrum(response, window_kind="flattop")
        p_fund = spectrum.power_dbm_at(f2, search_bins=2)
        p_im3 = spectrum.power_dbm_at(f_im3, search_bins=2)
        if rng is not None and self.repeatability_db > 0.0:
            p_fund += rng.normal(0.0, self.repeatability_db)
            p_im3 += rng.normal(0.0, self.repeatability_db)
        iip3 = self.tone_power_dbm + 0.5 * (p_fund - p_im3)
        return TwoToneIP3Result(
            iip3_dbm=float(iip3),
            fundamental_out_dbm=float(p_fund),
            im3_out_dbm=float(p_im3),
            tone_power_dbm=self.tone_power_dbm,
            f1=f1,
            f2=f2,
        )

    def measure_iip3_dbm(
        self, device: RFDevice, rng: Optional[np.random.Generator] = None
    ) -> float:
        """Convenience wrapper returning only the IIP3 number."""
        return self.measure_iip3(device, rng).iip3_dbm

    # ------------------------------------------------------------------
    # 1 dB compression
    # ------------------------------------------------------------------
    def measure_p1db_dbm(
        self,
        device: RFDevice,
        power_start_dbm: float = -35.0,
        power_stop_dbm: float = 5.0,
        n_points: int = 25,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """Swept-power input 1 dB compression point.

        Sweeps the input power, tracks the large-signal gain and
        interpolates the power where it has dropped 1 dB below the
        small-signal value.
        """
        if n_points < 5:
            raise ValueError("need at least 5 sweep points")
        f = device.center_frequency
        sample_rate = 16.0 * f
        duration = 64.0 / f
        powers = np.linspace(power_start_dbm, power_stop_dbm, n_points)
        gains = np.empty(n_points)
        for i, p in enumerate(powers):
            amplitude = dbm_to_vpeak(p)
            stimulus = tone(f, duration, sample_rate, amplitude=amplitude)
            response = device.process_rf(stimulus, rng)
            spec = amplitude_spectrum(response, window_kind="flattop")
            gains[i] = db20(spec.amplitude_at(f, search_bins=2) / amplitude)
        small_signal = gains[0]
        drop = small_signal - gains
        above = np.nonzero(drop >= 1.0)[0]
        if len(above) == 0:
            raise ValueError(
                "DUT never compressed by 1 dB within the sweep range; "
                f"increase power_stop_dbm (max drop {drop.max():.2f} dB)"
            )
        j = above[0]
        if j == 0:
            raise ValueError("DUT already compressed at the sweep start")
        # linear interpolation between the straddling sweep points
        frac = (1.0 - drop[j - 1]) / (drop[j] - drop[j - 1])
        return float(powers[j - 1] + frac * (powers[j] - powers[j - 1]))

    def total_time(self) -> float:
        """Seconds of tester time one spectrum test consumes."""
        return self.setup_time + self.measure_time
