"""Gain-test instrument (the conventional ATE's "Gain test" of Figure 1).

Implements a scalar gain measurement the way a production test program
does: apply a CW tone at the test frequency and power, capture the DUT
output, and report the output/input power ratio in dB.  The measurement
exercises the DUT's actual signal path (``process_rf``), so compression
and noise affect it realistically; instrument repeatability is modeled as
a gaussian error in dB.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.circuits.device import RFDevice
from repro.dsp.sources import dbm_to_vpeak, tone
from repro.dsp.spectral import tone_amplitude
from repro.dsp.units import db20

__all__ = ["GainAnalyzer"]


class GainAnalyzer:
    """Single-tone gain measurement.

    Parameters
    ----------
    test_power_dbm:
        Stimulus power; keep well below the DUT's P1dB for small-signal
        gain (the default -30 dBm suits LNAs).
    repeatability_db:
        1-sigma instrument repeatability.
    n_cycles:
        Number of carrier cycles captured (sets the record length).
    setup_time / measure_time:
        Seconds charged by the test-time model for configuring and running
        this test.
    """

    def __init__(
        self,
        test_power_dbm: float = -30.0,
        repeatability_db: float = 0.02,
        n_cycles: int = 200,
        setup_time: float = 0.080,
        measure_time: float = 0.100,
    ):
        if repeatability_db < 0:
            raise ValueError("repeatability must be non-negative")
        if n_cycles < 8:
            raise ValueError("need at least 8 carrier cycles")
        self.test_power_dbm = float(test_power_dbm)
        self.repeatability_db = float(repeatability_db)
        self.n_cycles = int(n_cycles)
        self.setup_time = float(setup_time)
        self.measure_time = float(measure_time)

    def measure_gain_db(
        self,
        device: RFDevice,
        frequency: Optional[float] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """Measure power gain at ``frequency`` (device center by default)."""
        f = device.center_frequency if frequency is None else frequency
        sample_rate = 16.0 * f
        duration = self.n_cycles / f
        amplitude = dbm_to_vpeak(self.test_power_dbm)
        stimulus = tone(f, duration, sample_rate, amplitude=amplitude)
        response = device.process_rf(stimulus, rng)
        # a mixer DUT translates the tone to its IF; amplifiers leave it at f
        f_out = getattr(device, "if_frequency", f)
        out_amplitude = tone_amplitude(response, f_out)
        gain_db = db20(out_amplitude / amplitude)
        if rng is not None and self.repeatability_db > 0.0:
            gain_db += rng.normal(0.0, self.repeatability_db)
        return float(gain_db)

    def total_time(self) -> float:
        """Seconds of tester time this test consumes."""
        return self.setup_time + self.measure_time
