"""Conventional-test compaction: the introduction's "test less" lever.

"The test less techniques exploit redundancy among the tests" -- even
without signature test, a production program can drop a parametric test
whenever the spec it measures is predictable from the specs the
*remaining* tests measure.  :func:`compact_test_set` finds such
redundancies in historical spec data by greedy backward elimination:
repeatedly drop the spec whose best cross-validated prediction from the
surviving specs is tightest, while the prediction error stays within the
caller's accuracy budget.

This is the paper's first cost lever and a natural companion to the
signature flow: the compacted conventional program is the fair baseline
the signature test must beat.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.regression.linear import RidgeRegression
from repro.regression.model_select import cross_val_rmse
from repro.regression.polynomial import PolynomialRidge

__all__ = ["CompactionResult", "compact_test_set"]


@dataclass(frozen=True)
class CompactionResult:
    """Outcome of the test-set compaction."""

    kept: Tuple[str, ...]
    dropped: Tuple[str, ...]
    #: dropped spec -> CV RMSE of predicting it from the kept specs
    prediction_errors: Dict[str, float]
    #: seconds saved per insertion (when test times were provided)
    seconds_saved: float

    def summary(self) -> str:
        lines = [f"kept tests: {list(self.kept)}"]
        for name in self.dropped:
            lines.append(
                f"dropped {name}: predictable from the kept specs to "
                f"+/-{self.prediction_errors[name]:.3f} (CV RMSE)"
            )
        if self.seconds_saved > 0:
            lines.append(
                f"insertion time saved: {self.seconds_saved * 1e3:.0f} ms"
            )
        return "\n".join(lines)


def _best_cv_error(
    x: np.ndarray, y: np.ndarray, rng: np.random.Generator
) -> float:
    """Tightest cross-validated prediction of y from x."""
    candidates = [
        lambda: RidgeRegression(1e-4),
        lambda: RidgeRegression(0.1),
        lambda: PolynomialRidge(2, 1e-3),
    ]
    k = min(5, len(x) // 2)
    return min(
        cross_val_rmse(c, x, y, k, np.random.default_rng(rng.integers(2**31)))
        for c in candidates
    )


def compact_test_set(
    spec_matrix: np.ndarray,
    spec_names: Sequence[str],
    max_rmse: Dict[str, float],
    test_times: Optional[Dict[str, float]] = None,
    min_kept: int = 1,
    rng: Optional[np.random.Generator] = None,
) -> CompactionResult:
    """Greedy backward elimination of redundant spec tests.

    Parameters
    ----------
    spec_matrix:
        Historical measurements, shape (N devices, n specs).
    spec_names:
        Column names.
    max_rmse:
        Per-spec accuracy budget: a spec may be dropped only if it is
        predictable from the kept specs within this RMSE.
    test_times:
        Optional per-spec test time (seconds) for the savings estimate;
        also used to prefer dropping the slowest redundant test first.
    min_kept:
        Never drop below this many tests.
    """
    spec_matrix = np.asarray(spec_matrix, dtype=float)
    if spec_matrix.ndim != 2 or spec_matrix.shape[1] != len(spec_names):
        raise ValueError("spec_matrix shape does not match spec_names")
    if len(spec_matrix) < 10:
        raise ValueError("need at least 10 historical devices")
    unknown = set(max_rmse) - set(spec_names)
    if unknown:
        raise KeyError(f"max_rmse names not in spec_names: {sorted(unknown)}")
    if min_kept < 1:
        raise ValueError("min_kept must be >= 1")
    rng = rng if rng is not None else np.random.default_rng()

    names: List[str] = list(spec_names)
    kept = list(range(len(names)))
    dropped: List[int] = []
    errors: Dict[str, float] = {}

    while len(kept) > min_kept:
        candidates: List[Tuple[float, float, int]] = []
        for j in kept:
            budget = max_rmse.get(names[j])
            if budget is None:
                continue  # spec without a budget is never dropped
            rest = [i for i in kept if i != j]
            if not rest:
                continue
            err = _best_cv_error(
                spec_matrix[:, rest], spec_matrix[:, j], rng
            )
            if err <= budget:
                time_gain = (test_times or {}).get(names[j], 0.0)
                candidates.append((time_gain, -err, j))
        if not candidates:
            break
        # drop the redundant test that saves the most time (error as
        # tie-break: the most predictable one)
        candidates.sort(reverse=True)
        _, neg_err, j = candidates[0]
        kept.remove(j)
        dropped.append(j)
        errors[names[j]] = -neg_err

    seconds_saved = sum((test_times or {}).get(names[j], 0.0) for j in dropped)
    return CompactionResult(
        kept=tuple(names[j] for j in kept),
        dropped=tuple(names[j] for j in dropped),
        prediction_errors=errors,
        seconds_saved=seconds_saved,
    )
