"""Soak campaigns: sustained-load exercise of the streaming service.

``repro serve`` and ``repro soak`` (and the CI ``soak`` job behind
``make soak``) all run the same driver: build a small calibrated flow,
stream seeded wafer-map traffic through :class:`StreamingTestService`
for a wall-clock budget, drain records concurrently, and report the
floor metrics -- DUTs/sec, p50/p99 per-device latency, queue depth,
yield -- as one JSON-able payload.

The load is deterministic (every lot's devices and capture seeds derive
from the master seed) even though the *duration* is wall-clock bound:
a longer run simply consumes a longer prefix of the same campaign.
Each soak also re-runs its first lot through the offline
``ProductionTestFlow.run`` and asserts bit-equality, so a soak that
passes has exercised the correctness contract too, not just the
plumbing.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from repro.circuits.device import SpecSet
from repro.dsp.waveform import PiecewiseLinearStimulus
from repro.loadboard.signature_path import SignatureTestBoard, simulation_config
from repro.loadboard.sites import MultiSiteBoard, MultiSiteConfig
from repro.regression.linear import RidgeRegression
from repro.regression.pipeline import Pipeline
from repro.regression.scaling import StandardScaler
from repro.runtime.calibration import CalibrationModel, measure_signatures
from repro.runtime.executor import Executor, spawn_seeds
from repro.runtime.monitoring import StreamHealthMonitor
from repro.runtime.production import ProductionTestFlow
from repro.runtime.service import StreamingTestService
from repro.runtime.specs import lna_limits
from repro.runtime.stream import StreamRecord
from repro.runtime.trafficgen import TrafficGenerator, WaferMapProfile

__all__ = ["build_soak_flow", "run_soak"]


def build_soak_flow(
    seed: int,
    n_train: int = 32,
    profile: Optional[WaferMapProfile] = None,
    limits=None,
    sites: int = 1,
) -> ProductionTestFlow:
    """A small calibrated production flow, deterministic in ``seed``.

    Trains a plain standardize+ridge calibration (no model-zoo CV -- a
    soak measures the service, not the regressor) on ``n_train``
    wafer-map devices and returns a flow with datasheet limits wired
    in, ready for :class:`StreamingTestService`.

    With ``sites > 1`` the flow captures through a
    :class:`~repro.loadboard.sites.MultiSiteBoard` with mild crosstalk
    and shared-instrument contention, so the soak exercises the
    site-aligned chunking and the per-site stream metrics; calibration
    trains through the same multi-site path.
    """
    if n_train < 8:
        raise ValueError("need at least 8 training devices")
    if sites < 1:
        raise ValueError("sites must be >= 1")
    profile = profile if profile is not None else WaferMapProfile()
    stim_seq, train_seq, noise_seq = spawn_seeds(int(seed), 3)

    # the paper's Section 4.1 signature path, unchanged: soak DUTs/sec
    # numbers stay comparable with the capture hot-path benchmark
    if sites > 1:
        board = MultiSiteBoard(
            simulation_config(),
            MultiSiteConfig(
                n_sites=sites,
                crosstalk_coupling=0.01,
                lo_retune_seconds=1e-3,
                digitizer_readout_seconds=2e-3,
            ),
        )
    else:
        board = SignatureTestBoard(simulation_config())
    stim_rng = np.random.default_rng(stim_seq)
    stimulus = PiecewiseLinearStimulus(
        stim_rng.uniform(-0.3, 0.3, 8), board.config.capture_seconds
    )

    train_rng = np.random.default_rng(train_seq)
    devices: List = []
    while len(devices) < n_train:
        devices.extend(profile.wafer_devices(train_rng))
    devices = devices[:n_train]
    signatures = measure_signatures(
        board, stimulus, devices, np.random.default_rng(noise_seq)
    )
    spec_matrix = np.vstack([d.specs().as_vector() for d in devices])

    pipelines = {}
    for j, name in enumerate(SpecSet.NAMES):
        pipeline = Pipeline([StandardScaler(), RidgeRegression(alpha=1.0)])
        pipeline.fit(signatures, spec_matrix[:, j])
        pipelines[name] = pipeline
    calibration = CalibrationModel(
        spec_names=SpecSet.NAMES,
        pipelines=pipelines,
        chosen={name: "ridge_1" for name in SpecSet.NAMES},
        cv_scores={name: {"ridge_1": float("nan")} for name in SpecSet.NAMES},
    )
    return ProductionTestFlow(
        board,
        stimulus,
        calibration,
        limits=limits if limits is not None else lna_limits(),
    )


class _Drain(threading.Thread):
    """Concurrent record consumer: counts outcomes, keeps the first lot.

    lint-concurrency: single-writer

    Only ``run`` (the drain thread) writes the counters; the main
    thread reads them strictly after ``join()`` returns, so the join's
    happens-before edge replaces a lock.
    """

    def __init__(self, service: StreamingTestService):
        super().__init__(name="repro-soak-drain", daemon=True)
        self.service = service
        self.n_records = 0
        self.n_passed = 0
        self.n_judged = 0
        self.first_lot: List[StreamRecord] = []
        self.error: Optional[BaseException] = None

    def run(self) -> None:
        try:
            for stream_record in self.service.records():
                self.n_records += 1
                if stream_record.lot_id == 0:
                    self.first_lot.append(stream_record)
                passed = stream_record.record.passed
                if passed is not None:
                    self.n_judged += 1
                    self.n_passed += int(passed)
        except BaseException as exc:  # pragma: no cover - surfaced by caller
            self.error = exc


def _check_first_lot(
    flow: ProductionTestFlow, order, streamed: List[StreamRecord]
) -> bool:
    """Bit-equality of the soak's first lot against the offline flow."""
    offline = flow.run(order.devices, np.random.default_rng(order.seed))
    if len(streamed) != len(offline.records):
        return False
    for stream_record, reference in zip(streamed, offline.records):
        record = stream_record.record
        if record.device_id != reference.device_id:
            return False
        if not np.array_equal(record.signature, reference.signature):
            return False
        if not np.array_equal(
            record.predicted.as_vector(), reference.predicted.as_vector()
        ):
            return False
        if record.passed != reference.passed:
            return False
    return True


def run_soak(
    seed: int = 2002,
    seconds: float = 60.0,
    max_lots: Optional[int] = None,
    lot_size: int = 16,
    n_cells: int = 4,
    executor: Optional[Union[Executor, str]] = None,
    max_pending_lots: int = 8,
    chunksize: Optional[int] = None,
    n_train: int = 32,
    min_duts_per_second: float = 1.0,
    on_snapshot: Optional[Callable] = None,
    flow: Optional[ProductionTestFlow] = None,
    sanitize_locks: bool = False,
    sites: int = 1,
) -> Dict:
    """Run one soak campaign and return the metrics payload.

    Streams wafer-map lots into the service until the wall-clock budget
    ``seconds`` runs out (or ``max_lots`` lots were submitted), drains
    records concurrently, health-checks every snapshot, re-runs the
    first lot offline for bit-equality, and returns a JSON-able dict.

    ``on_snapshot`` (if given) receives a
    :class:`~repro.runtime.metrics.MetricsSnapshot` after every
    submitted lot -- the ``serve`` CLI uses it for live output.

    With ``sanitize_locks`` the whole campaign (flow construction,
    service, drain) runs under the runtime lock-order sanitizer: an
    inverted acquisition order raises
    :class:`~repro.analysis.concurrency.runtime_sanitizer.LockOrderViolation`
    instead of deadlocking, and the payload gains a ``lock_sanitizer``
    entry with the observed order edges and worst hold times.  Pass
    ``flow=None`` in that mode so the flow's locks are instrumented too.
    """
    if sanitize_locks:
        from repro.analysis.concurrency.runtime_sanitizer import lock_sanitizer

        with lock_sanitizer(fail_fast=True) as report:
            payload = _run_soak(
                seed=seed,
                seconds=seconds,
                max_lots=max_lots,
                lot_size=lot_size,
                n_cells=n_cells,
                executor=executor,
                max_pending_lots=max_pending_lots,
                chunksize=chunksize,
                n_train=n_train,
                min_duts_per_second=min_duts_per_second,
                on_snapshot=on_snapshot,
                flow=flow,
                sites=sites,
            )
            report.check()
        payload["lock_sanitizer"] = report.to_dict()
        return payload
    return _run_soak(
        seed=seed,
        seconds=seconds,
        max_lots=max_lots,
        lot_size=lot_size,
        n_cells=n_cells,
        executor=executor,
        max_pending_lots=max_pending_lots,
        chunksize=chunksize,
        n_train=n_train,
        min_duts_per_second=min_duts_per_second,
        on_snapshot=on_snapshot,
        flow=flow,
        sites=sites,
    )


def _run_soak(
    seed: int,
    seconds: float,
    max_lots: Optional[int],
    lot_size: int,
    n_cells: int,
    executor: Optional[Union[Executor, str]],
    max_pending_lots: int,
    chunksize: Optional[int],
    n_train: int,
    min_duts_per_second: float,
    on_snapshot: Optional[Callable],
    flow: Optional[ProductionTestFlow],
    sites: int = 1,
) -> Dict:
    if seconds <= 0:
        raise ValueError("seconds must be positive")
    flow = (
        flow
        if flow is not None
        else build_soak_flow(seed, n_train=n_train, sites=sites)
    )
    traffic = TrafficGenerator(
        WaferMapProfile(), master_seed=int(seed) + 1, lot_size=lot_size,
        n_cells=n_cells,
    )
    monitor = StreamHealthMonitor(min_duts_per_second=min_duts_per_second)
    service = StreamingTestService(
        flow,
        executor=executor,
        max_pending_lots=max_pending_lots,
        chunksize=chunksize,
    )
    drain = _Drain(service)
    drain.start()

    first_order = None
    lots_submitted = 0
    start = time.monotonic()
    deadline = start + seconds
    for order in traffic.stream():
        if time.monotonic() >= deadline:
            break
        if max_lots is not None and lots_submitted >= max_lots:
            break
        if first_order is None:
            first_order = order
        service.submit(
            order.devices, np.random.default_rng(order.seed), cell_id=order.cell_id
        )
        lots_submitted += 1
        snapshot = service.metrics()
        if snapshot.devices_emitted:
            monitor.observe(snapshot)
        if on_snapshot is not None:
            on_snapshot(snapshot)
    service.close()
    drain.join()
    if drain.error is not None:  # pragma: no cover - propagated service bug
        raise drain.error
    wall_seconds = time.monotonic() - start

    final = service.metrics()
    if final.devices_emitted:
        monitor.observe(final)
    bit_identical = (
        _check_first_lot(flow, first_order, drain.first_lot)
        if first_order is not None
        else True
    )
    health = monitor.history[-1] if monitor.history else None
    return {
        "benchmark": "streaming_soak",
        "seed": int(seed),
        "requested_seconds": float(seconds),
        "wall_seconds": wall_seconds,
        "lot_size": int(lot_size),
        "n_cells": int(n_cells),
        "executor": service.executor.name,
        "sites": int(sites),
        "site_devices_tested": final.site_devices_emitted,
        "contention_wait_ms": final.contention_wait_s * 1e3,
        "max_pending_lots": int(max_pending_lots),
        "lots_submitted": lots_submitted,
        "lots_completed": final.lots_completed,
        "devices_tested": drain.n_records,
        "duts_per_second": final.duts_per_second,
        "duts_per_second_windowed": final.duts_per_second_windowed,
        "latency_p50_ms": final.latency_p50_s * 1e3,
        "latency_p99_ms": final.latency_p99_s * 1e3,
        "latency_worst_ms": final.latency_worst_s * 1e3,
        "queue_capacity": final.queue_capacity,
        "yield_fraction": (
            drain.n_passed / drain.n_judged if drain.n_judged else None
        ),
        "first_lot_bit_identical_to_offline": bit_identical,
        "healthy": monitor.healthy,
        "health_reasons": list(health.reasons) if health is not None else [],
        "unix_time": time.time(),
    }
