"""Signature-space outlier screening for catastrophic defects.

The calibration regression interpolates within the cloud of *good*
training signatures; a catastrophically defective part lands far outside
that cloud, and its "predicted specs" are extrapolated garbage.  Before
trusting the regression, production flows therefore screen each
signature for manifold membership.

:class:`SignatureOutlierScreen` models the good-signature cloud with a
PCA subspace fitted on training signatures and scores new signatures by

* the **Mahalanobis distance** inside the retained subspace (is the
  device an extreme process corner?), and
* the **reconstruction residual** orthogonal to it (is the signature
  shaped like a good device's at all?).

Both are normalized by their training quantiles, so a single threshold
(default: reject above 3x the 99th-percentile training score) covers
both mechanisms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.regression.pca import PCA

__all__ = ["OutlierScore", "SignatureOutlierScreen"]


@dataclass(frozen=True)
class OutlierScore:
    """Breakdown of one signature's outlier score."""

    mahalanobis: float  # in-subspace distance, normalized
    residual: float  # off-subspace distance, normalized
    is_outlier: bool

    @property
    def score(self) -> float:
        """The combined score compared against the threshold."""
        return max(self.mahalanobis, self.residual)


class SignatureOutlierScreen:
    """PCA-subspace screen fitted on good-device training signatures.

    Parameters
    ----------
    n_components:
        Retained subspace dimension; defaults to the number of
        components explaining 99 % of training variance (capped at 8).
    threshold:
        Scores are normalized so the 99th percentile of the *training*
        scores is 1.0; signatures scoring above ``threshold`` are flagged.
        The default 3.0 keeps process corners in and gross defects out.
    """

    def __init__(self, n_components: Optional[int] = None, threshold: float = 3.0):
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.requested_components = n_components
        self.threshold = float(threshold)
        self._pca: Optional[PCA] = None
        self._scale_mahalanobis: float = 1.0
        self._scale_residual: float = 1.0

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------
    def fit(self, signatures: np.ndarray) -> "SignatureOutlierScreen":
        signatures = np.asarray(signatures, dtype=float)
        if signatures.ndim != 2 or len(signatures) < 8:
            raise ValueError("need a (n >= 8, m) matrix of training signatures")
        full = PCA().fit(signatures)
        if self.requested_components is not None:
            k = min(self.requested_components, full.components_.shape[0])
        else:
            ratios = np.cumsum(full.explained_variance_ratio())
            k = int(np.searchsorted(ratios, 0.99)) + 1
            k = max(2, min(k, 8, full.components_.shape[0]))
        self._pca = PCA(k).fit(signatures)

        maha, resid = self._raw_scores(signatures)
        # normalize by the training 99th percentile (floored to avoid
        # divide-by-zero on noise-free synthetic data)
        self._scale_mahalanobis = max(float(np.quantile(maha, 0.99)), 1e-12)
        self._scale_residual = max(float(np.quantile(resid, 0.99)), 1e-12)
        return self

    def _raw_scores(self, signatures: np.ndarray):
        if self._pca is None:
            raise RuntimeError("screen is not fitted; call fit() first")
        z = self._pca.transform(signatures)
        var = np.maximum(self._pca.explained_variance_, 1e-300)
        maha = np.sqrt(np.sum(z**2 / var, axis=1))
        recon = self._pca.inverse_transform(z)
        resid = np.linalg.norm(signatures - recon, axis=1)
        return maha, resid

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------
    def score(self, signature: np.ndarray) -> OutlierScore:
        """Score a single signature."""
        if self._pca is None:
            raise RuntimeError("screen is not fitted")
        signature = np.asarray(signature, dtype=float)
        if signature.ndim != 1:
            raise ValueError("expected a single signature vector")
        maha, resid = self._raw_scores(signature[None, :])
        m = float(maha[0]) / self._scale_mahalanobis
        r = float(resid[0]) / self._scale_residual
        return OutlierScore(
            mahalanobis=m, residual=r, is_outlier=max(m, r) > self.threshold
        )

    def score_batch(self, signatures: np.ndarray) -> np.ndarray:
        """Combined scores for a batch; shape (n,)."""
        if self._pca is None:
            raise RuntimeError("screen is not fitted")
        signatures = np.asarray(signatures, dtype=float)
        maha, resid = self._raw_scores(signatures)
        return np.maximum(
            maha / self._scale_mahalanobis, resid / self._scale_residual
        )

    def flag_batch(self, signatures: np.ndarray) -> np.ndarray:
        """Boolean outlier flags for a batch."""
        return self.score_batch(signatures) > self.threshold

    @property
    def n_components(self) -> int:
        if self._pca is None:
            raise RuntimeError("screen is not fitted")
        return self._pca.components_.shape[0]
