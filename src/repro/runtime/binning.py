"""Binning quality analysis and guard-banding.

Signature-test pass/fail decisions are made on *predicted* specs, so
prediction error turns into two economic quantities:

* **test escapes** -- truly bad devices binned as good (they reach the
  customer; the expensive error);
* **yield loss** -- truly good devices binned as bad (they are thrown
  away; the cheap error).

Guard-banding trades one for the other: tightening each limit by
``k * sigma_err`` (the calibration's validation error for that spec)
moves escapes toward zero at the cost of extra yield loss.  This module
computes the confusion statistics and sweeps the guard-band factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.circuits.device import SpecSet
from repro.runtime.specs import SpecificationLimit, SpecificationLimits

__all__ = ["BinningReport", "confusion", "guard_banded_limits", "sweep_guard_band"]


@dataclass(frozen=True)
class BinningReport:
    """Confusion statistics of one binning run."""

    n_devices: int
    true_pass: int
    true_fail: int
    escapes: int  # bad binned good
    yield_loss: int  # good binned bad

    @property
    def escape_rate(self) -> float:
        """Escapes per truly-bad device (0 when the lot has no bad parts)."""
        return self.escapes / self.true_fail if self.true_fail else 0.0

    @property
    def yield_loss_rate(self) -> float:
        """Yield loss per truly-good device."""
        return self.yield_loss / self.true_pass if self.true_pass else 0.0

    @property
    def accuracy(self) -> float:
        correct = self.n_devices - self.escapes - self.yield_loss
        return correct / self.n_devices if self.n_devices else 1.0

    def summary(self) -> str:
        return (
            f"{self.n_devices} devices: {self.true_pass} good / "
            f"{self.true_fail} bad; escapes {self.escapes} "
            f"({self.escape_rate:.1%} of bad), yield loss {self.yield_loss} "
            f"({self.yield_loss_rate:.1%} of good), "
            f"accuracy {self.accuracy:.1%}"
        )


def confusion(
    true_specs: np.ndarray,
    predicted_specs: np.ndarray,
    limits: SpecificationLimits,
    spec_names: Sequence[str] = SpecSet.NAMES,
    decision_limits: SpecificationLimits | None = None,
) -> BinningReport:
    """Compare predicted-spec binning against true-spec binning.

    ``decision_limits`` (default: the true limits) are the possibly
    guard-banded limits the tester actually applies to predictions; the
    *true* limits always judge the true specs.
    """
    true_specs = np.asarray(true_specs, dtype=float)
    predicted_specs = np.asarray(predicted_specs, dtype=float)
    if true_specs.shape != predicted_specs.shape:
        raise ValueError("true and predicted spec matrices must match")
    if true_specs.shape[1] != len(spec_names):
        raise ValueError("spec column count does not match spec_names")
    decision_limits = decision_limits or limits

    def as_specset(row: np.ndarray) -> SpecSet:
        values = dict(zip(spec_names, row))
        return SpecSet(
            gain_db=values.get("gain_db", 0.0),
            nf_db=values.get("nf_db", 0.0),
            iip3_dbm=values.get("iip3_dbm", 0.0),
        )

    escapes = 0
    yield_loss = 0
    true_pass = 0
    true_fail = 0
    for t_row, p_row in zip(true_specs, predicted_specs):
        truly_good = limits.check(as_specset(t_row))
        binned_good = decision_limits.check(as_specset(p_row))
        if truly_good:
            true_pass += 1
            if not binned_good:
                yield_loss += 1
        else:
            true_fail += 1
            if binned_good:
                escapes += 1
    return BinningReport(
        n_devices=len(true_specs),
        true_pass=true_pass,
        true_fail=true_fail,
        escapes=escapes,
        yield_loss=yield_loss,
    )


def guard_banded_limits(
    limits: SpecificationLimits,
    prediction_sigmas: Dict[str, float],
    k: float,
) -> SpecificationLimits:
    """Tighten every limit by ``k`` times that spec's prediction error.

    Minimum limits move up by ``k * sigma``, maximum limits move down --
    the direction that rejects borderline predictions.
    """
    if k < 0:
        raise ValueError("guard-band factor must be non-negative")
    banded: Dict[str, SpecificationLimit] = {}
    for name, lim in limits.limits.items():
        sigma = prediction_sigmas.get(name, 0.0)
        new_min = lim.minimum + k * sigma if lim.minimum is not None else None
        new_max = lim.maximum - k * sigma if lim.maximum is not None else None
        if new_min is not None and new_max is not None and new_min > new_max:
            raise ValueError(
                f"{name}: guard band k={k} closes the limit window entirely"
            )
        banded[name] = SpecificationLimit(name, minimum=new_min, maximum=new_max)
    return SpecificationLimits(banded)


def sweep_guard_band(
    true_specs: np.ndarray,
    predicted_specs: np.ndarray,
    limits: SpecificationLimits,
    prediction_sigmas: Dict[str, float],
    k_values: Sequence[float] = (0.0, 0.5, 1.0, 2.0, 3.0),
    spec_names: Sequence[str] = SpecSet.NAMES,
) -> List[Tuple[float, BinningReport]]:
    """Escape/yield-loss trade-off curve over the guard-band factor."""
    out: List[Tuple[float, BinningReport]] = []
    for k in k_values:
        decision = guard_banded_limits(limits, prediction_sigmas, k)
        out.append(
            (
                float(k),
                confusion(
                    true_specs,
                    predicted_specs,
                    limits,
                    spec_names=spec_names,
                    decision_limits=decision,
                ),
            )
        )
    return out
