"""Production drift monitoring (statistical process control on the tester).

A signature calibration is only valid while the tester behaves the way
it did at calibration time; sources drift, filters age, cables loosen.
Production floors therefore re-measure a golden device on a schedule and
watch the resulting signatures with control-chart logic.

:class:`GoldenSignatureMonitor` keeps an exponentially weighted moving
average (EWMA) of the golden signature's per-bin deviation from its
calibration-time reference, normalized by the expected measurement
noise.  When the smoothed deviation exceeds the control limit, the
tester needs re-normalization (or service) before its predictions can be
trusted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.runtime.metrics import MetricsSnapshot

__all__ = [
    "MonitorState",
    "GoldenSignatureMonitor",
    "StreamHealth",
    "StreamHealthMonitor",
]


@dataclass(frozen=True)
class MonitorState:
    """Snapshot after one golden-device check."""

    n_checks: int
    ewma_score: float
    raw_score: float
    in_control: bool


class GoldenSignatureMonitor:
    """EWMA control chart over golden-device signature drift.

    Parameters
    ----------
    reference:
        Golden signature at calibration time (the in-control center).
    noise_sigma:
        Expected per-bin measurement noise std (sets the score scale);
        see :func:`repro.testgen.objective.signature_noise_std`.
    smoothing:
        EWMA weight ``lambda`` in (0, 1]; smaller = smoother/slower.
    control_limit:
        Alarm threshold on the EWMA score.  The raw score is the RMS
        per-bin deviation in noise-sigma units, so an in-control tester
        scores ~1; the default limit of 3 flags systematic drift well
        above the noise floor.
    """

    def __init__(
        self,
        reference: np.ndarray,
        noise_sigma: float,
        smoothing: float = 0.3,
        control_limit: float = 3.0,
    ):
        reference = np.asarray(reference, dtype=float)
        if reference.ndim != 1 or len(reference) == 0:
            raise ValueError("reference must be a non-empty vector")
        if noise_sigma <= 0:
            raise ValueError("noise_sigma must be positive")
        if not (0.0 < smoothing <= 1.0):
            raise ValueError("smoothing must be in (0, 1]")
        if control_limit <= 0:
            raise ValueError("control_limit must be positive")
        self.reference = reference
        self.noise_sigma = float(noise_sigma)
        self.smoothing = float(smoothing)
        self.control_limit = float(control_limit)
        self._ewma: Optional[float] = None
        self.history: List[MonitorState] = []

    def check(self, golden_signature: np.ndarray) -> MonitorState:
        """Score one fresh golden-device signature.

        Returns the updated monitor state and appends it to ``history``.
        """
        sig = np.asarray(golden_signature, dtype=float)
        if sig.shape != self.reference.shape:
            raise ValueError("signature length does not match the reference")
        deviation = (sig - self.reference) / self.noise_sigma
        raw = float(np.sqrt(np.mean(deviation**2)))
        if self._ewma is None:
            self._ewma = raw
        else:
            self._ewma = self.smoothing * raw + (1.0 - self.smoothing) * self._ewma
        state = MonitorState(
            n_checks=len(self.history) + 1,
            ewma_score=self._ewma,
            raw_score=raw,
            in_control=self._ewma <= self.control_limit,
        )
        self.history.append(state)
        return state

    @property
    def in_control(self) -> bool:
        """Current status (True before any check)."""
        return self.history[-1].in_control if self.history else True

    def checks_until_alarm(self) -> Optional[int]:
        """Index (1-based) of the first out-of-control check, if any."""
        for state in self.history:
            if not state.in_control:
                return state.n_checks
        return None


@dataclass(frozen=True)
class StreamHealth:
    """Snapshot after one streaming-service health check."""

    n_checks: int
    ewma_duts_per_second: float
    queue_fraction: float
    #: latest p99 per-device latency (seconds) from the observed snapshot
    latency_p99_s: float
    healthy: bool
    reasons: tuple


class StreamHealthMonitor:
    """Control-chart logic over the streaming service's live metrics.

    The same SPC posture :class:`GoldenSignatureMonitor` applies to
    tester drift, applied to service *liveness*: a periodic observer
    feeds :meth:`observe` with
    :meth:`~repro.runtime.service.StreamingTestService.metrics`
    snapshots, and the monitor smooths the windowed throughput with an
    EWMA and flags the service unhealthy when

    * smoothed throughput falls below ``min_duts_per_second`` (a stall
      or pool deadlock soaks up the floor's capacity silently), or
    * the ingest queue stays above ``max_queue_fraction`` full for
      ``queue_patience`` consecutive checks (sustained saturation: the
      cells outrun the capture backend), or
    * p99 per-device latency exceeds ``max_latency_p99_s``.

    Thresholds default to "off" (0 / 1.0 / +inf) so callers opt into
    exactly the alarms their floor cares about.
    """

    def __init__(
        self,
        min_duts_per_second: float = 0.0,
        max_queue_fraction: float = 1.0,
        max_latency_p99_s: float = float("inf"),
        smoothing: float = 0.3,
        queue_patience: int = 3,
    ):
        if min_duts_per_second < 0:
            raise ValueError("min_duts_per_second must be >= 0")
        if not (0.0 < max_queue_fraction <= 1.0):
            raise ValueError("max_queue_fraction must be in (0, 1]")
        if not (0.0 < smoothing <= 1.0):
            raise ValueError("smoothing must be in (0, 1]")
        if queue_patience < 1:
            raise ValueError("queue_patience must be >= 1")
        self.min_duts_per_second = float(min_duts_per_second)
        self.max_queue_fraction = float(max_queue_fraction)
        self.max_latency_p99_s = float(max_latency_p99_s)
        self.smoothing = float(smoothing)
        self.queue_patience = int(queue_patience)
        self._ewma: Optional[float] = None
        self._saturated_checks = 0
        self.history: List[StreamHealth] = []

    def observe(self, snapshot: MetricsSnapshot) -> StreamHealth:
        """Score one live metrics snapshot; appends to ``history``."""
        rate = snapshot.duts_per_second_windowed
        if self._ewma is None:
            self._ewma = rate
        else:
            self._ewma = self.smoothing * rate + (1.0 - self.smoothing) * self._ewma
        capacity = max(snapshot.queue_capacity, 1)
        queue_fraction = snapshot.queue_depth / capacity
        if queue_fraction >= self.max_queue_fraction:
            self._saturated_checks += 1
        else:
            self._saturated_checks = 0

        reasons = []
        if self._ewma < self.min_duts_per_second:
            reasons.append(
                f"throughput EWMA {self._ewma:.2f} DUTs/s below floor "
                f"{self.min_duts_per_second:.2f}"
            )
        if self._saturated_checks >= self.queue_patience:
            reasons.append(
                f"ingest queue >= {self.max_queue_fraction:.0%} full for "
                f"{self._saturated_checks} consecutive checks"
            )
        if snapshot.latency_p99_s > self.max_latency_p99_s:
            reasons.append(
                f"p99 latency {snapshot.latency_p99_s:.3f} s above limit "
                f"{self.max_latency_p99_s:.3f} s"
            )
        state = StreamHealth(
            n_checks=len(self.history) + 1,
            ewma_duts_per_second=self._ewma,
            queue_fraction=queue_fraction,
            latency_p99_s=snapshot.latency_p99_s,
            healthy=not reasons,
            reasons=tuple(reasons),
        )
        self.history.append(state)
        return state

    @property
    def healthy(self) -> bool:
        """Current status (True before any check)."""
        return self.history[-1].healthy if self.history else True
