"""Live throughput / latency metrics for the streaming test service.

A production floor is judged in DUTs per second and tail latency, so
the streaming service keeps three small instruments updated on every
emitted record:

* :class:`ThroughputMeter` -- cumulative and windowed devices/second.
* :class:`LatencyTracker` -- per-device latency quantiles (p50/p99)
  over a bounded ring of recent observations.
* :class:`MetricsSnapshot` -- one immutable, JSON-able reading of
  everything, produced by ``StreamingTestService.metrics()``.

All instruments take timestamps as plain floats from an injected clock,
so tests drive them with a fake clock and never sleep.  Memory is
bounded: a soak that streams millions of devices keeps only a fixed
ring of recent latencies and emission times (exact cumulative counts
are kept separately).
"""

from __future__ import annotations

import collections
import json
from dataclasses import asdict, dataclass
from typing import Deque, Dict, Optional

import numpy as np

__all__ = ["LatencyTracker", "MetricsSnapshot", "ThroughputMeter"]

#: recent observations kept for windowed rates and latency quantiles
DEFAULT_WINDOW = 4096


class ThroughputMeter:
    """Devices/second, cumulative and over a sliding window of emissions.

    The cumulative rate divides the total emitted count by the span
    from the first to the latest emission; the windowed rate uses only
    the last ``window`` emission timestamps, so it tracks the *current*
    service speed even after a slow warm-up.
    """

    def __init__(self, window: int = DEFAULT_WINDOW):
        if window < 2:
            raise ValueError("window must be >= 2")
        self._times: Deque[float] = collections.deque(maxlen=window)
        self.total = 0
        self._first: Optional[float] = None
        self._last: Optional[float] = None

    def record(self, timestamp: float, count: int = 1) -> None:
        """Register ``count`` devices emitted at ``timestamp``."""
        if count < 1:
            return
        self.total += count
        if self._first is None:
            self._first = timestamp
        self._last = timestamp
        for _ in range(count):
            self._times.append(timestamp)

    def cumulative_rate(self) -> float:
        """Devices/second since the first emission (0.0 before two)."""
        if self._first is None or self._last is None or self.total < 2:
            return 0.0
        span = self._last - self._first
        return (self.total - 1) / span if span > 0 else 0.0

    def windowed_rate(self) -> float:
        """Devices/second over the recent emission window."""
        if len(self._times) < 2:
            return 0.0
        span = self._times[-1] - self._times[0]
        return (len(self._times) - 1) / span if span > 0 else 0.0


class LatencyTracker:
    """Per-device latency quantiles over a bounded ring of observations.

    Quantiles are computed over the last ``window`` latencies (exact
    order statistics on the ring, not a sketch); ``count`` and ``mean``
    stay exact over the whole stream.
    """

    def __init__(self, window: int = DEFAULT_WINDOW):
        if window < 1:
            raise ValueError("window must be >= 1")
        self._ring: Deque[float] = collections.deque(maxlen=window)
        self.count = 0
        self._sum = 0.0
        self.worst = 0.0

    def record(self, latency: float) -> None:
        latency = float(latency)
        self._ring.append(latency)
        self.count += 1
        self._sum += latency
        if latency > self.worst:
            self.worst = latency

    @property
    def mean(self) -> float:
        return self._sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Latency quantile ``q`` in [0, 1] over the recent window."""
        if not (0.0 <= q <= 1.0):
            raise ValueError("q must be in [0, 1]")
        if not self._ring:
            return 0.0
        return float(np.quantile(np.asarray(self._ring, dtype=float), q))

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)


@dataclass(frozen=True)
class MetricsSnapshot:
    """One immutable reading of the service's live metrics."""

    #: total per-device records emitted so far
    devices_emitted: int
    #: lots fully processed / still queued or being captured
    lots_completed: int
    lots_in_flight: int
    #: devices inside queued or in-capture lots (not yet emitted)
    devices_in_flight: int
    #: ingest queue depth in lots (the backpressure gauge)
    queue_depth: int
    queue_capacity: int
    #: devices/second since the first emission and over the recent window
    duts_per_second: float
    duts_per_second_windowed: float
    #: per-device submission->emission latency stats (seconds)
    latency_p50_s: float
    latency_p99_s: float
    latency_mean_s: float
    latency_worst_s: float
    #: seconds on the service clock since the service started
    elapsed_s: float
    #: devices emitted per load-board site (None on single-site boards)
    site_devices_emitted: Optional[Dict[int, int]] = None
    #: modeled shared-instrument arbitration wait accumulated across
    #: emitted devices (seconds; 0 without contention modeling)
    contention_wait_s: float = 0.0

    def to_dict(self) -> Dict[str, float]:
        return asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def summary(self) -> str:
        """One human line, the way a floor dashboard would show it."""
        return (
            f"{self.devices_emitted} DUTs "
            f"({self.lots_completed} lots) in {self.elapsed_s:.2f} s | "
            f"{self.duts_per_second:.1f} DUTs/s "
            f"(window {self.duts_per_second_windowed:.1f}) | "
            f"latency p50 {self.latency_p50_s * 1e3:.1f} ms "
            f"p99 {self.latency_p99_s * 1e3:.1f} ms | "
            f"queue {self.queue_depth}/{self.queue_capacity}"
        )
