"""The streaming production-test service: from one lot to a factory.

``ProductionTestFlow.run`` tests one finished list and returns.  A real
test floor is a *service*: N test cells keep handing lots to one
calibration server for hours, and the floor is judged on sustained
throughput and tail latency, not on one batch.
:class:`StreamingTestService` is that long-running layer on top of the
unchanged offline flow:

* test cells :meth:`~StreamingTestService.submit` lots into a *bounded*
  ingest queue -- a full queue blocks (or raises
  :class:`~repro.runtime.stream.SubmitTimeout`), which is the service's
  backpressure signal;
* a dispatcher thread shards each lot into device chunks and ships
  them through the existing executor backends via the same batched
  ``signature_batch`` task the offline flow uses;
* per-device :class:`~repro.runtime.stream.StreamRecord` results are
  emitted incrementally (chunk wave by chunk wave, not lot by lot) and
  drained with :meth:`~StreamingTestService.records`;
* live metrics -- DUTs/sec, p50/p99 per-device latency, queue depth --
  are one :meth:`~StreamingTestService.metrics` call away.

Determinism contract
--------------------
Per-device seed streams are frozen at submission time with the exact
:func:`~repro.runtime.executor.spawn_seeds` derivation the offline flow
uses, so for the same (devices, master seed) pair the streamed records
are bit-identical to ``ProductionTestFlow.run`` -- regardless of
backend, chunking, queue capacity, or when the consumer drains.  The
``streaming-offline-equivalence`` relation in :mod:`repro.verify`
enforces this on every CI run.
"""

from __future__ import annotations

import queue
import threading
import time
from functools import partial
from typing import Dict, Iterator, Optional, Sequence, Union

from repro.runtime.calibration import _chunk_bounds
from repro.runtime.executor import (
    Executor,
    SeedLike,
    get_executor,
)
from repro.runtime.metrics import LatencyTracker, MetricsSnapshot, ThroughputMeter
from repro.runtime.production import ProductionTestFlow, _insertion_batch_task
from repro.runtime.stream import (
    Lot,
    ServiceClosed,
    StreamRecord,
    SubmitTimeout,
    batched,
    iter_lot_chunks,
)

__all__ = ["StreamingTestService"]

#: default ingest-queue capacity in lots (the backpressure bound)
DEFAULT_MAX_PENDING_LOTS = 8


class _EndOfStream:
    """Sentinel closing the record outbox (one instance per service)."""


class StreamingTestService:
    """Long-running streaming front end over a :class:`ProductionTestFlow`.

    Parameters
    ----------
    flow:
        The calibrated production flow; its board, calibration and
        limits are used unchanged (the service adds no physics).
    executor:
        Capture backend (:mod:`repro.parallel`): an
        :class:`~repro.runtime.executor.Executor` instance (caller owns
        its lifetime), a name like ``"process:4"`` (service-owned,
        closed with the service), or ``None`` for serial.
    max_pending_lots:
        Ingest-queue capacity; a full queue makes ``submit`` block --
        bounded memory no matter how fast the cells produce.
    chunksize:
        Devices per capture task (default: the offline flow's chunking
        for the resolved backend).
    clock:
        Monotonic time source for metrics (tests inject a fake one).

    Use as a context manager, or call :meth:`close` -- both drain every
    accepted lot before releasing service-owned pools::

        with StreamingTestService(flow, executor="thread:4") as svc:
            for lot_id, devices, seed in cells:
                svc.submit(devices, seed)
            svc.close()
            records = list(svc.records())
    """

    def __init__(
        self,
        flow: ProductionTestFlow,
        *,
        executor: Optional[Union[Executor, str]] = None,
        max_pending_lots: int = DEFAULT_MAX_PENDING_LOTS,
        chunksize: Optional[int] = None,
        clock=time.monotonic,
    ):
        if max_pending_lots < 1:
            raise ValueError("max_pending_lots must be >= 1")
        if chunksize is not None and chunksize < 1:
            raise ValueError("chunksize must be >= 1")
        self.flow = flow
        # a string/None spec resolves to a service-owned executor; an
        # Executor instance stays caller-owned (shared across services)
        self._owns_executor = not isinstance(executor, Executor)
        self._executor = get_executor(executor)
        self._chunksize = chunksize
        self._clock = clock
        self._started_at = clock()

        self._inbox: "queue.Queue[Union[Lot, _EndOfStream]]" = queue.Queue(
            maxsize=max_pending_lots
        )
        self._outbox: "queue.Queue[Union[StreamRecord, _EndOfStream]]" = queue.Queue()
        self._eos = _EndOfStream()

        self._lock = threading.Lock()
        self._closing = False
        self._next_lot_id = 0
        self._lots_submitted = 0
        self._lots_completed = 0
        self._devices_submitted = 0
        self._throughput = ThroughputMeter()
        self._latency = LatencyTracker()
        self._failure: Optional[BaseException] = None

        # multi-site observability: boards modeling shared-instrument
        # contention amortize the arbitration overhead per device, and
        # emitted records carry their site for per-site accounting
        board = flow.board
        self._track_sites = hasattr(board, "site_of")
        self._site_counts: Dict[int, int] = {}
        if hasattr(board, "arbitration_seconds") and hasattr(board, "n_sites"):
            self._arbitration_per_device = (
                board.arbitration_seconds() / board.n_sites
            )
        else:
            self._arbitration_per_device = 0.0
        self._contention_wait = 0.0

        self._dispatcher = threading.Thread(
            target=self._dispatch_loop,
            name="repro-stream-dispatcher",
            daemon=True,
        )
        self._dispatcher.start()

    # ------------------------------------------------------------------
    # ingest side (test cells)
    # ------------------------------------------------------------------
    @property
    def executor(self) -> Executor:
        """The resolved capture backend this service dispatches to."""
        return self._executor

    @property
    def closed(self) -> bool:
        """True once :meth:`close` was called (submissions rejected)."""
        with self._lock:
            return self._closing

    def submit(
        self,
        devices: Sequence,
        seed: SeedLike,
        *,
        cell_id: int = 0,
        timeout: Optional[float] = None,
    ) -> Lot:
        """Submit one lot; blocks (bounded queue) when the service is busy.

        The per-device seed streams are frozen here, in submission
        order, so results cannot depend on queueing or scheduling.
        Raises :class:`ServiceClosed` after :meth:`close`, and
        :class:`SubmitTimeout` when the ingest queue stays full past
        ``timeout`` seconds (the backpressure signal).
        """
        with self._lock:
            if self._closing:
                raise ServiceClosed(
                    "service is closed: draining already-accepted lots, "
                    "new submissions are rejected"
                )
            lot = Lot.seeded(
                lot_id=self._next_lot_id,
                devices=devices,
                seed=seed,
                cell_id=cell_id,
                submitted_at=self._clock(),
            )
            self._next_lot_id += 1
        try:
            self._inbox.put(lot, timeout=timeout)
        except queue.Full:
            raise SubmitTimeout(
                f"ingest queue stayed full ({self._inbox.maxsize} lots) for "
                f"{timeout} s; the service is saturated -- slow the cells "
                "down or add capture workers"
            ) from None
        with self._lock:
            self._lots_submitted += 1
            self._devices_submitted += len(lot)
        return lot

    def close(self, timeout: Optional[float] = None) -> None:
        """Stop accepting lots, drain everything in flight (idempotent).

        Every accepted lot is fully captured and emitted before the
        dispatcher exits -- a record, once submitted, is never dropped.
        Service-owned executors are shut down afterwards.  Raises the
        dispatcher's error if a capture failed mid-stream.
        """
        with self._lock:
            first_close = not self._closing
            self._closing = True
        if first_close:
            # a live dispatcher frees inbox slots, so a bounded put
            # eventually lands; if it died mid-stream (capture error)
            # nothing drains, and the sentinel is unnecessary anyway
            while True:
                try:
                    self._inbox.put(self._eos, timeout=0.05)
                    break
                except queue.Full:
                    if not self._dispatcher.is_alive():
                        break
        self._dispatcher.join(timeout=timeout)
        if self._dispatcher.is_alive():
            raise SubmitTimeout(
                f"dispatcher still draining after {timeout} s (queue depth "
                f"{self._inbox.qsize()} lots)"
            )
        if self._owns_executor:
            self._executor.close()
        self._raise_failure()

    def __enter__(self) -> "StreamingTestService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # drain side (the floor's data sink)
    # ------------------------------------------------------------------
    def records(self, timeout: Optional[float] = None) -> Iterator[StreamRecord]:
        """Yield per-device records as they are emitted.

        Ends when the service is closed *and* every accepted lot has
        been emitted.  With a ``timeout``, raises ``queue.Empty`` if no
        record (and no end-of-stream) arrives in time -- for liveness
        checks in monitoring code.
        """
        while True:
            item = self._outbox.get(timeout=timeout)
            if isinstance(item, _EndOfStream):
                # re-arm for any concurrent/subsequent drainers
                self._outbox.put(item)
                self._raise_failure()
                return
            yield item

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def metrics(self) -> MetricsSnapshot:
        """One consistent snapshot of the live service metrics."""
        with self._lock:
            emitted = self._throughput.total
            completed = self._lots_completed
            in_flight_lots = self._lots_submitted - completed
            in_flight_devices = self._devices_submitted - emitted
            return MetricsSnapshot(
                devices_emitted=emitted,
                lots_completed=completed,
                lots_in_flight=in_flight_lots,
                devices_in_flight=in_flight_devices,
                queue_depth=self._inbox.qsize(),
                queue_capacity=self._inbox.maxsize,
                duts_per_second=self._throughput.cumulative_rate(),
                duts_per_second_windowed=self._throughput.windowed_rate(),
                latency_p50_s=self._latency.p50,
                latency_p99_s=self._latency.p99,
                latency_mean_s=self._latency.mean,
                latency_worst_s=self._latency.worst,
                elapsed_s=self._clock() - self._started_at,
                site_devices_emitted=(
                    dict(sorted(self._site_counts.items()))
                    if self._track_sites
                    else None
                ),
                contention_wait_s=self._contention_wait,
            )

    # ------------------------------------------------------------------
    # dispatcher internals
    # ------------------------------------------------------------------
    def _lot_chunksize(self, lot: Lot) -> int:
        align = getattr(self.flow.board, "chunk_alignment", 1)
        bounds = _chunk_bounds(len(lot), self._executor, self._chunksize, align)
        return bounds[0][1] - bounds[0][0] if bounds else 1

    def _dispatch_loop(self) -> None:
        """Pull lots FIFO, capture them in chunk waves, emit records."""
        workers = max(1, getattr(self._executor, "workers", 1))
        task_fn = partial(_insertion_batch_task, self.flow)
        while True:
            lot = self._inbox.get()
            if isinstance(lot, _EndOfStream):
                break
            try:
                chunks = iter_lot_chunks(lot, self._lot_chunksize(lot))
                # one wave = one task per worker: every backend stays
                # saturated inside a wave, and records still leave the
                # service wave by wave instead of lot by lot
                for wave in batched(chunks, workers):
                    blocks = self._executor.map_tasks(task_fn, wave, chunksize=1)
                    now = self._clock()
                    latency = now - lot.submitted_at
                    emitted = []
                    for block in blocks:
                        for record in block:
                            emitted.append(
                                StreamRecord(
                                    lot_id=lot.lot_id,
                                    cell_id=lot.cell_id,
                                    record=record,
                                    latency=latency,
                                )
                            )
                    with self._lock:
                        self._throughput.record(now, len(emitted))
                        for stream_record in emitted:
                            self._latency.record(latency)
                            if self._track_sites:
                                site = stream_record.record.site_index
                                self._site_counts[site] = (
                                    self._site_counts.get(site, 0) + 1
                                )
                        self._contention_wait += (
                            len(emitted) * self._arbitration_per_device
                        )
                    for stream_record in emitted:
                        self._outbox.put(stream_record)
                with self._lock:
                    self._lots_completed += 1
            except BaseException as exc:  # surface on close()/records()
                with self._lock:
                    self._failure = exc
                break
        self._outbox.put(self._eos)

    def _raise_failure(self) -> None:
        with self._lock:
            failure = self._failure
            self._failure = None
        if failure is not None:
            raise failure
