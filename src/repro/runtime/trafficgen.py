"""Seeded wafer-map traffic generator for soak-testing the service.

A soak test is only trustworthy if its load is (a) shaped like real
production traffic and (b) exactly replayable.  This module generates
both: devices drawn from a *wafer map* -- specs vary with die position
through a radial process gradient plus seeded die-level noise, the
classic bullseye signature of RF process spreads -- streamed as lots
from N simulated test cells.

Everything derives from one master seed through
``np.random.SeedSequence.spawn`` (campaign -> wafer -> die), so a soak
campaign replays bit-identically: the same seed produces the same
wafers, the same lot boundaries, the same per-lot capture seeds -- and
therefore, by the service's determinism contract, the same per-device
records.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.behavioral import BehavioralAmplifier
from repro.runtime.executor import SeedLike, spawn_seeds

__all__ = ["WaferMapProfile", "TrafficGenerator", "LotOrder"]


@dataclass(frozen=True)
class WaferMapProfile:
    """Process statistics of one wafer population.

    The mean spec at normalized wafer radius ``r`` (0 center, 1 edge)
    is ``nominal + radial * r**2`` -- the center-to-edge bowl of a
    radial process gradient -- with additive die-level Gaussian noise
    and one per-wafer offset shared by every die (wafer-to-wafer
    spread).
    """

    carrier_freq: float = 900e6
    grid: int = 12  # dies per wafer axis; dies outside the circle drop
    gain_nominal_db: float = 16.0
    gain_radial_db: float = -0.8
    gain_sigma_db: float = 0.35
    nf_nominal_db: float = 2.2
    nf_radial_db: float = 0.35
    nf_sigma_db: float = 0.12
    iip3_nominal_dbm: float = 3.0
    iip3_radial_dbm: float = -0.6
    iip3_sigma_dbm: float = 0.4
    wafer_sigma_scale: float = 0.5  # wafer offset sigma, in die sigmas

    def die_positions(self) -> List[Tuple[float, float]]:
        """Normalized (x, y) of every die inside the wafer circle."""
        if self.grid < 1:
            raise ValueError("grid must be >= 1")
        positions = []
        half = (self.grid - 1) / 2.0
        scale = half if half > 0 else 1.0
        for row in range(self.grid):
            for col in range(self.grid):
                x = (col - half) / scale
                y = (row - half) / scale
                if math.hypot(x, y) <= 1.0:
                    positions.append((x, y))
        return positions

    def wafer_devices(
        self, rng: np.random.Generator
    ) -> List[BehavioralAmplifier]:
        """One wafer's devices in raster (test-probe) order."""
        positions = self.die_positions()
        wafer_offset = rng.normal(0.0, self.wafer_sigma_scale, size=3)
        devices = []
        for x, y in positions:
            r2 = x * x + y * y
            gain = (
                self.gain_nominal_db
                + self.gain_radial_db * r2
                + self.gain_sigma_db * (wafer_offset[0] + rng.normal())
            )
            nf = (
                self.nf_nominal_db
                + self.nf_radial_db * r2
                + self.nf_sigma_db * (wafer_offset[1] + rng.normal())
            )
            iip3 = (
                self.iip3_nominal_dbm
                + self.iip3_radial_dbm * r2
                + self.iip3_sigma_dbm * (wafer_offset[2] + rng.normal())
            )
            devices.append(
                BehavioralAmplifier(
                    self.carrier_freq, gain, max(nf, 0.1), iip3
                )
            )
        return devices


@dataclass(frozen=True)
class LotOrder:
    """One generated lot, ready to feed ``StreamingTestService.submit``."""

    lot_index: int
    cell_id: int
    wafer_index: int
    devices: Sequence[BehavioralAmplifier]
    #: master seed for the lot's measurement noise (submit/replay key)
    seed: np.random.SeedSequence


class TrafficGenerator:
    """Replayable lot stream cut from seeded wafer-map populations.

    Wafers are generated one at a time and diced into consecutive
    ``lot_size`` groups in probe order; lots round-robin over
    ``n_cells`` simulated test cells.  Two generators built with the
    same ``(profile, master_seed, lot_size, n_cells)`` produce
    identical campaigns.

    Parameters
    ----------
    profile:
        Wafer population statistics.
    master_seed:
        Campaign seed; every wafer and every lot's measurement-noise
        seed derives from it.
    lot_size:
        Devices per lot (the last lot of a wafer may be short).
    n_cells:
        Simulated test cells the lots round-robin over.
    """

    def __init__(
        self,
        profile: WaferMapProfile,
        master_seed: SeedLike,
        lot_size: int = 25,
        n_cells: int = 4,
    ):
        if lot_size < 1:
            raise ValueError("lot_size must be >= 1")
        if n_cells < 1:
            raise ValueError("n_cells must be >= 1")
        self.profile = profile
        self.lot_size = int(lot_size)
        self.n_cells = int(n_cells)
        # one root per concern: wafer synthesis vs capture noise, so a
        # different lot size never changes the wafer population
        wafer_root, capture_root = spawn_seeds(master_seed, 2)
        self._wafer_root = wafer_root
        self._capture_root = capture_root

    @staticmethod
    def _child(root: np.random.SeedSequence, index: int) -> np.random.SeedSequence:
        """Child ``index`` of ``root``, derived statelessly.

        ``SeedSequence.spawn`` advances the parent's spawn counter, so
        repeated ``lots()`` calls would silently change the campaign;
        building the child from an explicit ``spawn_key`` keeps the
        generator replayable without hidden state.
        """
        return np.random.SeedSequence(
            entropy=root.entropy, spawn_key=root.spawn_key + (int(index),)
        )

    def lots(self, n_lots: int) -> Iterator[LotOrder]:
        """Yield the campaign's first ``n_lots`` lots in arrival order.

        Replayable: every call (on this or an identically-built
        generator) yields the identical campaign prefix.
        """
        if n_lots < 0:
            raise ValueError("n_lots must be >= 0")
        return self._lots(n_lots)

    def stream(self) -> Iterator[LotOrder]:
        """Yield lots forever (duration-bound soaks stop consuming)."""
        return self._lots(None)

    def _lots(self, n_lots: Optional[int]) -> Iterator[LotOrder]:
        emitted = 0
        wafer_index = 0
        while n_lots is None or emitted < n_lots:
            wafer_seed = self._child(self._wafer_root, wafer_index)
            devices = self.profile.wafer_devices(np.random.default_rng(wafer_seed))
            for start in range(0, len(devices), self.lot_size):
                if n_lots is not None and emitted >= n_lots:
                    return
                lot_devices = devices[start : start + self.lot_size]
                yield LotOrder(
                    lot_index=emitted,
                    cell_id=emitted % self.n_cells,
                    wafer_index=wafer_index,
                    devices=lot_devices,
                    seed=self._child(self._capture_root, emitted),
                )
                emitted += 1
            wafer_index += 1
