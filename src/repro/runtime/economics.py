"""Test-time and test-cost economics.

Section 1 of the paper motivates signature test with two numbers: the
cost of "million-dollar ATEs" and the "long test times required by
elaborate performance tests"; Section 4.2 notes the signature test
"required only 5 milliseconds of data capture".  This module turns those
into the standard production-test economics: tester cost per second,
throughput, and cost per device, for both flows.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TesterCostModel", "FlowEconomics", "FlowComparison", "compare_flows"]

SECONDS_PER_YEAR = 365.25 * 24 * 3600.0


@dataclass(frozen=True)
class TesterCostModel:
    """Cost structure of one tester.

    Attributes
    ----------
    name:
        Label for reports.
    capital_cost:
        Purchase price (currency units).
    depreciation_years:
        Straight-line depreciation period.
    utilization:
        Fraction of wall-clock time the tester runs production.
    annual_operating_cost:
        Maintenance, floor space, operator share per year.
    """

    name: str
    capital_cost: float
    depreciation_years: float = 5.0
    utilization: float = 0.85
    annual_operating_cost: float = 0.0

    def __post_init__(self):
        if self.capital_cost < 0 or self.annual_operating_cost < 0:
            raise ValueError("costs must be non-negative")
        if not (0.0 < self.utilization <= 1.0):
            raise ValueError("utilization must be in (0, 1]")
        if self.depreciation_years <= 0:
            raise ValueError("depreciation_years must be positive")

    @property
    def cost_per_second(self) -> float:
        """Fully loaded cost of one productive tester-second."""
        annual = self.capital_cost / self.depreciation_years + self.annual_operating_cost
        return annual / (SECONDS_PER_YEAR * self.utilization)

    @classmethod
    def conventional_rf_ate(cls) -> "TesterCostModel":
        """The paper's 'million-dollar ATE'."""
        return cls(
            name="conventional RF ATE",
            capital_cost=1_000_000.0,
            annual_operating_cost=80_000.0,
        )

    @classmethod
    def low_cost_tester(cls) -> "TesterCostModel":
        """RF source + AWG + digitizer + load board."""
        return cls(
            name="low-cost signature tester",
            capital_cost=100_000.0,
            annual_operating_cost=20_000.0,
        )


@dataclass(frozen=True)
class FlowEconomics:
    """Economics of one test flow on one tester.

    ``sites`` models multi-site testing (the introduction's "test
    faster" lever): ``sites`` devices are tested concurrently per
    insertion.  Site hardware is far cheaper than the tester core, so
    the default model charges ``site_cost_fraction`` of the base capital
    per additional site.
    """

    tester: TesterCostModel
    seconds_per_device: float
    sites: int = 1
    site_cost_fraction: float = 0.10

    def __post_init__(self):
        if self.seconds_per_device <= 0:
            raise ValueError("test time must be positive")
        if self.sites < 1:
            raise ValueError("sites must be >= 1")
        if not (0.0 <= self.site_cost_fraction <= 1.0):
            raise ValueError("site_cost_fraction must be in [0, 1]")

    @property
    def effective_seconds_per_device(self) -> float:
        """Tester seconds consumed per device at this site count."""
        return self.seconds_per_device / self.sites

    @property
    def throughput_per_hour(self) -> float:
        return 3600.0 / self.effective_seconds_per_device

    @property
    def _site_capital_factor(self) -> float:
        return 1.0 + self.site_cost_fraction * (self.sites - 1)

    @property
    def cost_per_device(self) -> float:
        return (
            self.tester.cost_per_second
            * self._site_capital_factor
            * self.effective_seconds_per_device
        )


@dataclass(frozen=True)
class FlowComparison:
    """Side-by-side result of :func:`compare_flows`."""

    conventional: FlowEconomics
    signature: FlowEconomics

    @property
    def time_speedup(self) -> float:
        """How many times faster the signature insertion is."""
        return (
            self.conventional.seconds_per_device / self.signature.seconds_per_device
        )

    @property
    def cost_reduction(self) -> float:
        """Conventional cost-per-device divided by signature cost."""
        return self.conventional.cost_per_device / self.signature.cost_per_device

    def summary(self) -> str:
        c, s = self.conventional, self.signature
        return "\n".join(
            [
                f"{c.tester.name}: {c.seconds_per_device * 1e3:.1f} ms/device, "
                f"{c.throughput_per_hour:.0f} devices/h, "
                f"{c.cost_per_device * 100:.3f} cents/device",
                f"{s.tester.name}: {s.seconds_per_device * 1e3:.1f} ms/device, "
                f"{s.throughput_per_hour:.0f} devices/h, "
                f"{s.cost_per_device * 100:.3f} cents/device",
                f"speedup {self.time_speedup:.1f}x, "
                f"cost reduction {self.cost_reduction:.1f}x",
            ]
        )


def compare_flows(
    conventional_seconds: float,
    signature_seconds: float,
    conventional_tester: TesterCostModel | None = None,
    signature_tester: TesterCostModel | None = None,
) -> FlowComparison:
    """Compare the two flows' per-device time and cost."""
    conventional_tester = conventional_tester or TesterCostModel.conventional_rf_ate()
    signature_tester = signature_tester or TesterCostModel.low_cost_tester()
    return FlowComparison(
        conventional=FlowEconomics(conventional_tester, conventional_seconds),
        signature=FlowEconomics(signature_tester, signature_seconds),
    )
