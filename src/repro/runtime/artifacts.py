"""Test-program artifacts: persisting and reloading a deployed flow.

A production test program is an *artifact*: the optimized stimulus and
the fitted calibration model travel from the test-engineering bench to
many testers on the floor, and must reload bit-exactly months later.
:func:`save_test_program` / :func:`load_test_program` serialize the pair
(plus limits and metadata) to a single file.

Format: a ``pickle`` payload wrapped with a magic string and a format
version, so stale or foreign files fail loudly instead of unpickling
garbage.  Pickle is appropriate here because the artifact is produced
and consumed by the same library on a trusted test floor; the loader
still verifies the header before touching the payload.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

from repro.dsp.waveform import PiecewiseLinearStimulus
from repro.runtime.calibration import CalibrationModel
from repro.runtime.specs import SpecificationLimits

__all__ = ["TestProgram", "save_test_program", "load_test_program"]

_MAGIC = b"repro-test-program"
_VERSION = 1


@dataclass
class TestProgram:
    """Everything a production tester needs to run signature test.

    Attributes
    ----------
    stimulus:
        The optimized PWL stimulus.
    calibration:
        Fitted signature -> spec pipelines.
    limits:
        Optional datasheet limits for binning.
    metadata:
        Free-form provenance (DUT name, calibration date, tester id...).
    """

    stimulus: PiecewiseLinearStimulus
    calibration: CalibrationModel
    limits: Optional[SpecificationLimits] = None
    metadata: Dict[str, str] = field(default_factory=dict)

    def describe(self) -> str:
        lines = [
            f"stimulus: {self.stimulus.n_breakpoints} breakpoints over "
            f"{self.stimulus.duration * 1e6:.3g} us "
            f"(limit +/-{self.stimulus.v_limit:.3g} V)",
            "calibration models:",
        ]
        for name in self.calibration.spec_names:
            lines.append(f"  {name}: {self.calibration.chosen[name]}")
        if self.limits is not None:
            lines.append(f"limits on: {sorted(self.limits.limits)}")
        for key, value in sorted(self.metadata.items()):
            lines.append(f"{key}: {value}")
        return "\n".join(lines)


def save_test_program(program: TestProgram, path: Union[str, Path]) -> Path:
    """Write a test program to ``path``; returns the resolved path."""
    if not isinstance(program, TestProgram):
        raise TypeError("expected a TestProgram")
    path = Path(path)
    payload = pickle.dumps(program, protocol=pickle.HIGHEST_PROTOCOL)
    with open(path, "wb") as fh:
        fh.write(_MAGIC)
        fh.write(_VERSION.to_bytes(2, "big"))
        fh.write(payload)
    return path.resolve()


def load_test_program(path: Union[str, Path]) -> TestProgram:
    """Read a test program written by :func:`save_test_program`.

    Raises
    ------
    ValueError
        If the file is not a test-program artifact or its format version
        is unsupported.
    """
    path = Path(path)
    with open(path, "rb") as fh:
        magic = fh.read(len(_MAGIC))
        if magic != _MAGIC:
            raise ValueError(f"{path} is not a repro test-program artifact")
        version = int.from_bytes(fh.read(2), "big")
        if version != _VERSION:
            raise ValueError(
                f"{path}: format version {version} not supported "
                f"(this library reads version {_VERSION})"
            )
        program = pickle.load(fh)
    if not isinstance(program, TestProgram):
        raise ValueError(f"{path}: payload is not a TestProgram")
    return program
