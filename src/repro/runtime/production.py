"""The production signature-test flow.

Figure 5, right box: "During production test, the signature response of
the DUT is measured on a low-cost tester and the performance
specifications are computed from the obtained signature."

:class:`ProductionTestFlow` owns the pieces a test-floor insertion needs:
the signature board (with its stimulus), the calibration model, and the
datasheet limits.  It produces per-device records plus run-level yield
and throughput statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.circuits.device import RFDevice, SpecSet
from repro.dsp.waveform import PiecewiseLinearStimulus, Waveform
from repro.loadboard.signature_path import SignatureTestBoard
from repro.runtime.calibration import CalibrationModel, _chunk_bounds
from repro.runtime.executor import Executor, get_executor, spawn_seeds
from repro.runtime.specs import SpecificationLimits

__all__ = ["DeviceTestRecord", "ProductionRunResult", "ProductionTestFlow"]


def _insertion_task(flow: "ProductionTestFlow", task) -> "DeviceTestRecord":
    """One pickled production insertion (module-level for ProcessExecutor)."""
    device_id, device, seed = task
    return flow.test_device(device, np.random.default_rng(seed), device_id=device_id)


def _insertion_batch_task(
    flow: "ProductionTestFlow", task
) -> List["DeviceTestRecord"]:
    """One pickled batched insertion over a device chunk."""
    ids, devices, seeds = task
    rngs = [np.random.default_rng(seed) for seed in seeds]
    signatures = flow.board.signature_batch(
        devices,
        flow.stimulus,
        rngs=rngs,
        n_bins=flow.signature_bins,
        engine=flow.capture_engine,
    )
    # multi-site boards amortize the (contention-inflated) insertion
    # time over the sites; single-site boards keep the config's time
    if hasattr(flow.board, "device_test_time"):
        test_time = flow.board.device_test_time()
    else:
        test_time = flow.board.config.total_test_time()
    site_of = getattr(flow.board, "site_of", None)
    records = []
    for position, (device_id, signature) in enumerate(zip(ids, signatures)):
        signature = signature.copy()  # detach the row from the batch matrix
        predicted = flow.calibration.predict(signature)
        passed = flow.limits.check(predicted) if flow.limits is not None else None
        records.append(
            DeviceTestRecord(
                device_id=device_id,
                predicted=predicted,
                passed=passed,
                test_time=test_time,
                signature=signature,
                # chunk bounds are aligned to the site count, so the
                # chunk-local position determines the site
                site_index=site_of(position) if site_of is not None else 0,
            )
        )
    return records


@dataclass(frozen=True)
class DeviceTestRecord:
    """Outcome of testing one device."""

    device_id: int
    predicted: SpecSet
    passed: Optional[bool]  # None when no limits were configured
    test_time: float
    signature: np.ndarray
    #: load-board site that captured this device (0 on single-site boards)
    site_index: int = 0


@dataclass
class ProductionRunResult:
    """Aggregate statistics of a production run."""

    records: List[DeviceTestRecord] = field(default_factory=list)

    @property
    def n_devices(self) -> int:
        return len(self.records)

    @property
    def yield_fraction(self) -> float:
        """Pass fraction (requires limits to have been configured)."""
        judged = [r for r in self.records if r.passed is not None]
        if not judged:
            raise ValueError("no pass/fail information recorded")
        return sum(r.passed for r in judged) / len(judged)

    @property
    def total_test_time(self) -> float:
        return sum(r.test_time for r in self.records)

    @property
    def mean_test_time(self) -> float:
        if not self.records:
            raise ValueError("empty run")
        return self.total_test_time / len(self.records)

    def throughput_per_hour(self) -> float:
        """Devices per tester-hour at this flow's test time."""
        if self.mean_test_time <= 0:
            raise ValueError("test time must be positive")
        return 3600.0 / self.mean_test_time

    def predicted_matrix(self) -> np.ndarray:
        """All predicted specs as an (N, 3) matrix (empty run: (0, 3))."""
        if not self.records:
            return np.empty((0, len(SpecSet.NAMES)))
        return np.vstack([r.predicted.as_vector() for r in self.records])


class ProductionTestFlow:
    """Signature capture + spec prediction + binning for one DUT family."""

    def __init__(
        self,
        board: SignatureTestBoard,
        stimulus: Union[Waveform, PiecewiseLinearStimulus],
        calibration: CalibrationModel,
        limits: Optional[SpecificationLimits] = None,
        signature_bins: Optional[int] = None,
        capture_engine: Optional[str] = None,
    ):
        self.board = board
        self.stimulus = stimulus
        self.calibration = calibration
        self.limits = limits
        self.signature_bins = signature_bins
        #: capture engine for batched insertions (None = board default,
        #: i.e. the compiled whole-lot program); streamed lots inherit it
        self.capture_engine = capture_engine

    def test_device(
        self,
        device: RFDevice,
        rng: np.random.Generator,
        device_id: int = 0,
    ) -> DeviceTestRecord:
        """One production insertion."""
        signature = self.board.signature(
            device, self.stimulus, rng=rng, n_bins=self.signature_bins
        )
        predicted = self.calibration.predict(signature)
        passed = self.limits.check(predicted) if self.limits is not None else None
        return DeviceTestRecord(
            device_id=device_id,
            predicted=predicted,
            passed=passed,
            test_time=self.board.config.total_test_time(),
            signature=signature,
        )

    def run(
        self,
        devices: Sequence[RFDevice],
        rng: np.random.Generator,
        *,
        executor: Optional[Union[Executor, str]] = None,
        chunksize: Optional[int] = None,
    ) -> ProductionRunResult:
        """Test a lot of devices, optionally across a worker pool.

        Each device gets its own RNG stream spawned from ``rng`` (one
        64-bit draw is consumed), so the per-device records -- kept in
        input order -- are bit-identical for any ``executor`` backend,
        worker count, or ``chunksize``.  Boards exposing
        ``signature_batch`` are captured in vectorized device chunks
        (the whole lot at once on a serial backend); spec prediction
        stays per-device either way.

        Parameters
        ----------
        devices:
            The lot, tested as ``device_id`` 0..N-1 in the given order.
        rng:
            Master generator for the lot's measurement noise.
        executor:
            Batch backend (:mod:`repro.parallel`): an
            :class:`~repro.runtime.executor.Executor`, a backend name
            like ``"process"`` / ``"process:4"``, or ``None`` for
            serial.
        chunksize:
            Devices shipped per worker task (pooled backends only).
        """
        devices = list(devices)
        seeds = spawn_seeds(rng, len(devices))
        ex = get_executor(executor)
        if hasattr(self.board, "signature_batch"):
            ids = list(range(len(devices)))
            tasks = [
                (ids[a:b], devices[a:b], seeds[a:b])
                for a, b in _chunk_bounds(
                    len(devices), ex, chunksize,
                    getattr(self.board, "chunk_alignment", 1),
                )
            ]
            blocks = ex.map_tasks(
                partial(_insertion_batch_task, self), tasks, chunksize=1
            )
            return ProductionRunResult(
                records=[record for block in blocks for record in block]
            )
        tasks = list(zip(range(len(devices)), devices, seeds))
        records = ex.map_tasks(
            partial(_insertion_task, self), tasks, chunksize=chunksize
        )
        return ProductionRunResult(records=list(records))
