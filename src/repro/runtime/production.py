"""The production signature-test flow.

Figure 5, right box: "During production test, the signature response of
the DUT is measured on a low-cost tester and the performance
specifications are computed from the obtained signature."

:class:`ProductionTestFlow` owns the pieces a test-floor insertion needs:
the signature board (with its stimulus), the calibration model, and the
datasheet limits.  It produces per-device records plus run-level yield
and throughput statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.circuits.device import RFDevice, SpecSet
from repro.dsp.waveform import PiecewiseLinearStimulus, Waveform
from repro.loadboard.signature_path import SignatureTestBoard
from repro.runtime.calibration import CalibrationModel
from repro.runtime.executor import Executor, get_executor, spawn_seeds
from repro.runtime.specs import SpecificationLimits

__all__ = ["DeviceTestRecord", "ProductionRunResult", "ProductionTestFlow"]


def _insertion_task(flow: "ProductionTestFlow", task) -> "DeviceTestRecord":
    """One pickled production insertion (module-level for ProcessExecutor)."""
    device_id, device, seed = task
    return flow.test_device(device, np.random.default_rng(seed), device_id=device_id)


@dataclass(frozen=True)
class DeviceTestRecord:
    """Outcome of testing one device."""

    device_id: int
    predicted: SpecSet
    passed: Optional[bool]  # None when no limits were configured
    test_time: float
    signature: np.ndarray


@dataclass
class ProductionRunResult:
    """Aggregate statistics of a production run."""

    records: List[DeviceTestRecord] = field(default_factory=list)

    @property
    def n_devices(self) -> int:
        return len(self.records)

    @property
    def yield_fraction(self) -> float:
        """Pass fraction (requires limits to have been configured)."""
        judged = [r for r in self.records if r.passed is not None]
        if not judged:
            raise ValueError("no pass/fail information recorded")
        return sum(r.passed for r in judged) / len(judged)

    @property
    def total_test_time(self) -> float:
        return sum(r.test_time for r in self.records)

    @property
    def mean_test_time(self) -> float:
        if not self.records:
            raise ValueError("empty run")
        return self.total_test_time / len(self.records)

    def throughput_per_hour(self) -> float:
        """Devices per tester-hour at this flow's test time."""
        if self.mean_test_time <= 0:
            raise ValueError("test time must be positive")
        return 3600.0 / self.mean_test_time

    def predicted_matrix(self) -> np.ndarray:
        """All predicted specs as an (N, 3) matrix."""
        return np.vstack([r.predicted.as_vector() for r in self.records])


class ProductionTestFlow:
    """Signature capture + spec prediction + binning for one DUT family."""

    def __init__(
        self,
        board: SignatureTestBoard,
        stimulus: Union[Waveform, PiecewiseLinearStimulus],
        calibration: CalibrationModel,
        limits: Optional[SpecificationLimits] = None,
        signature_bins: Optional[int] = None,
    ):
        self.board = board
        self.stimulus = stimulus
        self.calibration = calibration
        self.limits = limits
        self.signature_bins = signature_bins

    def test_device(
        self,
        device: RFDevice,
        rng: np.random.Generator,
        device_id: int = 0,
    ) -> DeviceTestRecord:
        """One production insertion."""
        signature = self.board.signature(
            device, self.stimulus, rng=rng, n_bins=self.signature_bins
        )
        predicted = self.calibration.predict(signature)
        passed = self.limits.check(predicted) if self.limits is not None else None
        return DeviceTestRecord(
            device_id=device_id,
            predicted=predicted,
            passed=passed,
            test_time=self.board.config.total_test_time(),
            signature=signature,
        )

    def run(
        self,
        devices: Sequence[RFDevice],
        rng: np.random.Generator,
        *,
        executor: Optional[Union[Executor, str]] = None,
        chunksize: Optional[int] = None,
    ) -> ProductionRunResult:
        """Test a lot of devices, optionally across a worker pool.

        Each device gets its own RNG stream spawned from ``rng`` (one
        64-bit draw is consumed), so the per-device records -- kept in
        input order -- are bit-identical for any ``executor`` backend,
        worker count, or ``chunksize``.

        Parameters
        ----------
        devices:
            The lot, tested as ``device_id`` 0..N-1 in the given order.
        rng:
            Master generator for the lot's measurement noise.
        executor:
            Batch backend (:mod:`repro.parallel`): an
            :class:`~repro.runtime.executor.Executor`, a backend name
            like ``"process"`` / ``"process:4"``, or ``None`` for
            serial.
        chunksize:
            Devices shipped per worker task (pooled backends only).
        """
        devices = list(devices)
        seeds = spawn_seeds(rng, len(devices))
        tasks = list(zip(range(len(devices)), devices, seeds))
        records = get_executor(executor).map_tasks(
            partial(_insertion_task, self), tasks, chunksize=chunksize
        )
        return ProductionRunResult(records=list(records))
