"""Stream datatypes for the continuous production-test service.

The paper's economics only work at production scale: signatures exist
to cut per-device test time across millions of DUTs, which means the
test floor is a *stream* of lots arriving from many test cells, not one
finished list.  This module holds the small, executor-agnostic pieces
of that stream:

* :class:`Lot` -- one submitted unit of work: a device list plus the
  per-device seed streams frozen at submission time.
* :class:`StreamRecord` -- one emitted per-device outcome, wrapping the
  offline :class:`~repro.runtime.production.DeviceTestRecord` with its
  stream coordinates and latency.
* :class:`ServiceClosed` / :class:`SubmitTimeout` -- the submission
  error surface.

Determinism contract
--------------------
A lot's per-device seeds are spawned from its master seed *at
submission time*, in submission order, with exactly the
:func:`~repro.runtime.executor.spawn_seeds` call the offline
``ProductionTestFlow.run`` makes.  Everything downstream -- which
executor backend captures the lot, how it is chunked, when the records
are drained -- therefore cannot change a single bit of the results.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.runtime.executor import SeedLike, spawn_seeds
from repro.runtime.production import DeviceTestRecord

__all__ = [
    "Lot",
    "StreamRecord",
    "ServiceClosed",
    "SubmitTimeout",
    "batched",
    "iter_lot_chunks",
]


class ServiceClosed(RuntimeError):
    """Raised when a lot is submitted to a closed (or closing) service."""


class SubmitTimeout(TimeoutError):
    """Raised when a bounded ingest queue stays full past the timeout.

    This is the backpressure signal a test cell acts on: the service is
    saturated, so slow down (or route the lot to another tester).
    """


@dataclass(frozen=True)
class Lot:
    """One submitted lot: devices plus their frozen per-device seeds.

    Build lots with :meth:`Lot.seeded` (or let
    :meth:`StreamingTestService.submit
    <repro.runtime.service.StreamingTestService.submit>` build them);
    the constructor itself assumes ``seeds`` was already spawned in
    submission order.
    """

    lot_id: int
    devices: Sequence
    seeds: Sequence[np.random.SeedSequence]
    #: simulated test cell that produced the lot (metrics tag only)
    cell_id: int = 0
    #: submission timestamp on the service clock (filled in by submit)
    submitted_at: float = 0.0

    def __post_init__(self) -> None:
        if len(self.devices) != len(self.seeds):
            raise ValueError(
                f"lot {self.lot_id}: {len(self.devices)} devices but "
                f"{len(self.seeds)} seeds"
            )

    def __len__(self) -> int:
        return len(self.devices)

    @classmethod
    def seeded(
        cls,
        lot_id: int,
        devices: Sequence,
        seed: SeedLike,
        cell_id: int = 0,
        submitted_at: float = 0.0,
    ) -> "Lot":
        """Freeze a lot's per-device streams from its master ``seed``.

        Spawns one child :class:`~numpy.random.SeedSequence` per device
        -- the identical derivation ``ProductionTestFlow.run`` performs,
        so streamed and offline captures of the same (devices, seed)
        pair are bit-identical.
        """
        return cls(
            lot_id=lot_id,
            devices=list(devices),
            seeds=spawn_seeds(seed, len(devices)),
            cell_id=cell_id,
            submitted_at=submitted_at,
        )


@dataclass(frozen=True)
class StreamRecord:
    """One per-device outcome, emitted incrementally by the service."""

    lot_id: int
    cell_id: int
    record: DeviceTestRecord
    #: seconds from lot submission to record emission (service clock)
    latency: float

    @property
    def device_id(self) -> int:
        return self.record.device_id


def iter_lot_chunks(lot: Lot, chunksize: int):
    """``(ids, devices, seeds)`` capture tasks covering ``lot`` in order.

    The triple matches the task shape of
    :func:`repro.runtime.production._insertion_batch_task`, so a chunk
    can be shipped to any executor backend unchanged.
    """
    if chunksize < 1:
        raise ValueError("chunksize must be >= 1")
    n = len(lot)
    for start in range(0, n, chunksize):
        stop = min(start + chunksize, n)
        yield (
            list(range(start, stop)),
            list(lot.devices[start:stop]),
            list(lot.seeds[start:stop]),
        )


def batched(iterable, size: int):
    """Yield lists of up to ``size`` items (dispatch waves)."""
    if size < 1:
        raise ValueError("size must be >= 1")
    iterator = iter(iterable)
    while True:
        wave = list(itertools.islice(iterator, size))
        if not wave:
            return
        yield wave
