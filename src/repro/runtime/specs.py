"""Datasheet specification limits and pass/fail binning."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.circuits.device import SpecSet

__all__ = ["SpecificationLimit", "SpecificationLimits", "lna_limits"]


@dataclass(frozen=True)
class SpecificationLimit:
    """One test limit: ``minimum <= value <= maximum`` (either side open)."""

    name: str
    minimum: Optional[float] = None
    maximum: Optional[float] = None

    def __post_init__(self):
        if self.minimum is None and self.maximum is None:
            raise ValueError(f"{self.name}: at least one bound is required")
        if (
            self.minimum is not None
            and self.maximum is not None
            and self.minimum > self.maximum
        ):
            raise ValueError(f"{self.name}: minimum exceeds maximum")

    def check(self, value: float) -> bool:
        if self.minimum is not None and value < self.minimum:
            return False
        if self.maximum is not None and value > self.maximum:
            return False
        return True

    def margin(self, value: float) -> float:
        """Distance to the nearest limit (negative when failing)."""
        margins = []
        if self.minimum is not None:
            margins.append(value - self.minimum)
        if self.maximum is not None:
            margins.append(self.maximum - value)
        return min(margins)


class SpecificationLimits:
    """A set of limits keyed by spec name (``gain_db`` etc.)."""

    def __init__(self, limits: Dict[str, SpecificationLimit]):
        for name, limit in limits.items():
            if name != limit.name:
                raise ValueError(f"key {name!r} != limit name {limit.name!r}")
        self.limits = dict(limits)

    def check(self, specs: SpecSet) -> bool:
        """True when every limited spec is within its bounds."""
        values = specs.as_dict()
        return all(
            limit.check(values[name])
            for name, limit in self.limits.items()
            if name in values
        )

    def failures(self, specs: SpecSet) -> Dict[str, float]:
        """Failing specs and their (negative) margins."""
        values = specs.as_dict()
        out = {}
        for name, limit in self.limits.items():
            if name in values and not limit.check(values[name]):
                out[name] = limit.margin(values[name])
        return out

    def worst_margin(self, specs: SpecSet) -> float:
        """The tightest margin across all limited specs."""
        values = specs.as_dict()
        margins = [
            limit.margin(values[name])
            for name, limit in self.limits.items()
            if name in values
        ]
        if not margins:
            raise ValueError("no applicable limits")
        return min(margins)


def lna_limits(
    gain_min_db: float = 14.0,
    nf_max_db: float = 3.3,
    iip3_min_dbm: float = -1.0,
) -> SpecificationLimits:
    """Representative production limits for the 900 MHz LNA family."""
    return SpecificationLimits(
        {
            "gain_db": SpecificationLimit("gain_db", minimum=gain_min_db),
            "nf_db": SpecificationLimit("nf_db", maximum=nf_max_db),
            "iip3_dbm": SpecificationLimit("iip3_dbm", minimum=iip3_min_dbm),
        }
    )
