"""Parametric fault diagnosis from signatures (the paper's reference [9]).

Cherubal & Chatterjee, "Parametric fault diagnosis for analog systems
using functional mapping" (DATE 1999) -- by the same group, referenced
as the regression machinery's origin -- goes one step beyond spec
prediction: estimate the *process parameters* themselves from the
measured response, so a failing device can be traced to the component
that drifted.

:class:`ParameterDiagnosisModel` reuses the calibration stack with the
process parameters (as fractional deviations from nominal) as the
regression targets.  In simulation the training parameters are known
exactly; on silicon they would come from PCM/e-test data.

Not every parameter is diagnosable: one that barely moves the signature
(the LNA's base resistance, say) cannot be estimated from it, however
good the regression.  More fundamentally, a tuned-path signature carries
only as many degrees of freedom as the DUT's envelope behaviour (two for
the cubic LNA: gain and third-order coefficient), so parameters acting
through the *same* degree of freedom -- all the bias resistors move
``gm`` -- form ambiguity groups that no estimator can split.  The model
therefore cross-validates each parameter's estimator and reports a
per-parameter *observability* (the fraction of its process variance the
signature explains); diagnoses are ranked only among parameters the
signature can actually see, and the blind ones are flagged instead of
hallucinated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.circuits.parameters import ParameterSpace
from repro.regression.model_select import select_best_model
from repro.runtime.calibration import default_candidates

__all__ = ["ParameterDiagnosis", "ParameterDiagnosisModel", "ambiguity_groups"]


def ambiguity_groups(
    a_s: np.ndarray,
    space: ParameterSpace,
    collinearity: float = 0.95,
) -> List[Tuple[str, ...]]:
    """Group parameters whose signature effects are collinear.

    Two parameters whose columns of the signature sensitivity matrix
    ``A_s`` point (anti)parallel move the signature along the same
    direction -- no estimator can tell them apart, only their *group* is
    diagnosable.  Groups are the connected components of the graph whose
    edges join columns with ``|cos angle| >= collinearity``; parameters
    with (near-)zero signature effect form their own "blind" group at
    the end.

    Parameters
    ----------
    a_s:
        Signature sensitivity matrix, shape (m, k), columns in the
        space's canonical order (e.g. from
        :meth:`repro.testgen.optimizer.SignatureStimulusOptimizer.signature_matrix`).
    space:
        The parameter space naming the columns.
    collinearity:
        Cosine threshold for "same direction".
    """
    a_s = np.asarray(a_s, dtype=float)
    if a_s.ndim != 2 or a_s.shape[1] != len(space):
        raise ValueError("A_s column count must match the parameter space")
    if not (0.0 < collinearity <= 1.0):
        raise ValueError("collinearity must be in (0, 1]")
    names = space.names()
    norms = np.linalg.norm(a_s, axis=0)
    blind_cut = 1e-3 * float(np.max(norms)) if np.max(norms) > 0 else 0.0
    active = [j for j in range(len(names)) if norms[j] > blind_cut]
    blind = [j for j in range(len(names)) if norms[j] <= blind_cut]

    # union-find over the active columns
    parent = {j: j for j in active}

    def find(j):
        while parent[j] != j:
            parent[j] = parent[parent[j]]
            j = parent[j]
        return j

    for i_pos, i in enumerate(active):
        for j in active[i_pos + 1 :]:
            cos = abs(float(a_s[:, i] @ a_s[:, j])) / (norms[i] * norms[j])
            if cos >= collinearity:
                parent[find(i)] = find(j)

    groups: Dict[int, List[str]] = {}
    for j in active:
        groups.setdefault(find(j), []).append(names[j])
    out = [tuple(sorted(g)) for g in groups.values()]
    out.sort(key=lambda g: (-len(g), g))
    if blind:
        out.append(tuple(sorted(names[j] for j in blind)))
    return out


@dataclass(frozen=True)
class ParameterDiagnosis:
    """One device's diagnosis."""

    #: parameter -> estimated fractional deviation from nominal
    estimated_deviations: Dict[str, float]
    #: parameter -> deviation in units of its own process sigma,
    #: restricted to observable parameters
    sigma_scores: Dict[str, float]
    #: observable parameters ranked by |sigma score|, largest first
    ranked: Tuple[str, ...]

    @property
    def prime_suspect(self) -> str:
        """The observable parameter deviating hardest from nominal."""
        if not self.ranked:
            raise ValueError("no observable parameters to rank")
        return self.ranked[0]


class ParameterDiagnosisModel:
    """Signature -> process-parameter estimator.

    Parameters
    ----------
    space:
        The process space whose parameters are to be estimated.
    observability_threshold:
        A parameter counts as observable when cross-validation explains
        at least this fraction of its process variance
        (``1 - (cv_rmse / sigma)^2``).
    """

    def __init__(self, space: ParameterSpace, observability_threshold: float = 0.5):
        if not (0.0 < observability_threshold < 1.0):
            raise ValueError("observability_threshold must be in (0, 1)")
        self.space = space
        self.observability_threshold = float(observability_threshold)
        self._models: Dict[str, object] = {}
        self.observability: Dict[str, float] = {}
        self.chosen: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def fit(
        self,
        signatures: np.ndarray,
        parameter_matrix: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> "ParameterDiagnosisModel":
        """Fit one estimator per process parameter.

        Parameters
        ----------
        signatures:
            Training signatures, shape (N, m).
        parameter_matrix:
            The training devices' true parameter values, shape (N, k),
            columns in the space's canonical order (raw values -- they
            are normalized internally).
        """
        signatures = np.asarray(signatures, dtype=float)
        parameter_matrix = np.asarray(parameter_matrix, dtype=float)
        if signatures.ndim != 2 or parameter_matrix.ndim != 2:
            raise ValueError("signatures and parameters must be 2-D")
        if len(signatures) != len(parameter_matrix):
            raise ValueError("row counts differ")
        if parameter_matrix.shape[1] != len(self.space):
            raise ValueError(
                f"expected {len(self.space)} parameter columns, "
                f"got {parameter_matrix.shape[1]}"
            )
        rng = rng if rng is not None else np.random.default_rng()
        deviations = self.space.normalize(parameter_matrix)
        sigmas = self.space.fractional_std_vector()
        candidates = default_candidates(len(signatures))
        folds = min(5, len(signatures) // 2)

        for j, name in enumerate(self.space.names()):
            best_name, model, scores = select_best_model(
                candidates, signatures, deviations[:, j], k=folds, rng=rng
            )
            cv_rmse = scores[best_name]
            explained = max(0.0, 1.0 - (cv_rmse / max(sigmas[j], 1e-12)) ** 2)
            self._models[name] = model
            self.chosen[name] = best_name
            self.observability[name] = float(explained)
        return self

    def observable_parameters(self) -> List[str]:
        """Parameters the signature can actually estimate."""
        if not self.observability:
            raise RuntimeError("model is not fitted")
        return [
            n
            for n in self.space.names()
            if self.observability[n] >= self.observability_threshold
        ]

    # ------------------------------------------------------------------
    # diagnosis
    # ------------------------------------------------------------------
    def estimate(self, signature: np.ndarray) -> Dict[str, float]:
        """Estimated fractional deviations for every parameter."""
        if not self._models:
            raise RuntimeError("model is not fitted")
        signature = np.asarray(signature, dtype=float)
        if signature.ndim != 1:
            raise ValueError("expected one signature vector")
        row = signature[None, :]
        return {
            name: float(model.predict(row)[0])
            for name, model in self._models.items()
        }

    def diagnose(self, signature: np.ndarray) -> ParameterDiagnosis:
        """Rank the observable parameters by how far they sit off nominal."""
        estimates = self.estimate(signature)
        sigmas = dict(
            zip(self.space.names(), self.space.fractional_std_vector().tolist())
        )
        observable = self.observable_parameters()
        scores = {
            name: estimates[name] / max(sigmas[name], 1e-12) for name in observable
        }
        ranked = tuple(sorted(scores, key=lambda n: -abs(scores[n])))
        return ParameterDiagnosis(
            estimated_deviations=estimates, sigma_scores=scores, ranked=ranked
        )

    def summary(self) -> str:
        if not self.observability:
            raise RuntimeError("model is not fitted")
        lines = [f"{'parameter':>12s}  {'observability':>13s}  {'model':>12s}"]
        for name in self.space.names():
            obs = self.observability[name]
            tag = "" if obs >= self.observability_threshold else "  (blind)"
            lines.append(
                f"{name:>12s}  {obs:13.3f}  {self.chosen[name]:>12s}{tag}"
            )
        return "\n".join(lines)
