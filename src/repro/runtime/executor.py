"""Pluggable parallel execution backends for batch workloads.

The paper's whole argument is production *throughput*: one fast
signature capture replaces a rack of sequential per-spec RF
measurements.  The reproduction's hot paths -- GA population fitness,
Monte-Carlo training-set capture, and the production flow itself -- are
embarrassingly parallel across devices/genes, so they route their batch
work through one narrow interface:

``map_tasks(fn, items, *, chunksize=None) -> list``

with three interchangeable backends:

* :class:`SerialExecutor` -- plain in-process loop (the default).
* :class:`ThreadExecutor` -- ``concurrent.futures`` thread pool; helps
  when the work releases the GIL (large FFTs, BLAS).
* :class:`ProcessExecutor` -- process pool for true multi-core scaling;
  falls back to serial execution (with a warning) when a pool cannot be
  started (sandboxes, missing semaphores, Windows spawn restrictions)
  or when the task graph cannot be pickled.

Determinism contract
--------------------
All backends preserve input order, and callers never share one RNG
across tasks.  Instead, batch call sites derive one independent child
stream per task with :func:`spawn_seeds` /
:func:`spawn_generators` (built on ``np.random.SeedSequence.spawn``),
so the same master seed produces bit-identical results on every
backend, any worker count, and any chunking.  Tasks must be pure: the
process backend may re-run the batch serially after a pool failure.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, List, Optional, Union

import numpy as np

__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "available_cpus",
    "default_chunksize",
    "get_executor",
    "spawn_generators",
    "spawn_seeds",
]


def available_cpus() -> int:
    """CPUs this process may actually use (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # macOS / Windows
        return os.cpu_count() or 1


def default_chunksize(n_items: int, n_workers: int) -> int:
    """Batch size that keeps every worker busy without per-task overhead.

    Four chunks per worker: large enough to amortize pickling, small
    enough that an unlucky slow chunk cannot serialize the tail.
    """
    if n_items <= 0 or n_workers <= 0:
        return 1
    return max(1, n_items // (4 * n_workers) or 1)


SeedLike = Union[int, np.random.SeedSequence, np.random.Generator]


def spawn_seeds(seed: SeedLike, n: int) -> List[np.random.SeedSequence]:
    """``n`` independent, order-stable child seed sequences.

    The children depend only on the entropy of ``seed`` (for a
    :class:`~numpy.random.Generator`, on its current state, from which
    exactly one 64-bit draw is consumed), *not* on how the tasks are
    later distributed over workers -- the foundation of the
    cross-backend bit-identical guarantee.
    """
    if n < 0:
        raise ValueError("n must be >= 0")
    if isinstance(seed, np.random.Generator):
        root = np.random.SeedSequence(int(seed.integers(0, 2**63)))
    elif isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(int(seed))
    return list(root.spawn(n))


def spawn_generators(seed: SeedLike, n: int) -> List[np.random.Generator]:
    """``n`` independent generators, one per task (see :func:`spawn_seeds`)."""
    return [np.random.default_rng(child) for child in spawn_seeds(seed, n)]


class Executor:
    """Base class: order-preserving batch map over pure tasks.

    Every executor is a context manager; :meth:`close` releases any
    worker pool (a no-op for poolless backends).
    """

    #: human-readable backend name ("serial", "thread", "process")
    name = "serial"

    def map_tasks(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        *,
        chunksize: Optional[int] = None,
    ) -> List[Any]:
        """Apply ``fn`` to every item, returning results in input order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release pooled resources (idempotent); no-op without a pool."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}()"


class SerialExecutor(Executor):
    """In-process loop; the reference implementation every backend must match."""

    name = "serial"

    def map_tasks(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        *,
        chunksize: Optional[int] = None,
    ) -> List[Any]:
        return [fn(item) for item in items]


class _PoolExecutor(Executor):
    """Pooled backend base: lazy pool, reused across ``map_tasks`` calls.

    Keeping the pool alive amortizes worker startup over every batch an
    executor instance ever runs -- the GA reuses one pool across all
    generations, a production shift across all lots.  Pools also work
    as context managers (``with ProcessExecutor(4) as ex: ...``) and
    can be shut down explicitly with :meth:`close`.
    """

    #: pool construction / submission failures that trigger serial fallback
    _FALLBACK_ERRORS = (OSError, BrokenProcessPool, pickle.PicklingError,
                        RuntimeError, ValueError, AttributeError, TypeError,
                        ImportError)

    def __init__(self, max_workers: Optional[int] = None):
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers
        self._pool = None
        self._broken = False

    @property
    def workers(self) -> int:
        """Pool size: ``max_workers`` or the machine's CPU budget."""
        return self.max_workers if self.max_workers is not None else available_cpus()

    def _make_pool(self):
        raise NotImplementedError

    def _pool_map(self, pool, fn, items, chunksize) -> List[Any]:
        raise NotImplementedError

    def map_tasks(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        *,
        chunksize: Optional[int] = None,
    ) -> List[Any]:
        items = list(items)
        if len(items) <= 1 or self.workers <= 1 or self._broken:
            return SerialExecutor().map_tasks(fn, items)
        if chunksize is None:
            chunksize = default_chunksize(len(items), self.workers)
        try:
            if self._pool is None:
                self._pool = self._make_pool()
            return self._pool_map(self._pool, fn, items, chunksize)
        except self._FALLBACK_ERRORS as exc:
            # a broken pool cannot be reused; stop retrying forks and
            # degrade this executor to serial for its remaining lifetime
            self._broken = True
            self.close()
            warnings.warn(
                f"{type(self).__name__} could not run the batch in a worker "
                f"pool ({type(exc).__name__}: {exc}); falling back to serial "
                f"execution. Results are unchanged, only slower.",
                RuntimeWarning,
                stacklevel=2,
            )
            return SerialExecutor().map_tasks(fn, items)

    def close(self) -> None:
        """Shut the worker pool down (idempotent); serial use still works."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(max_workers={self.max_workers})"


class ThreadExecutor(_PoolExecutor):
    """Thread-pool backend; useful when tasks release the GIL."""

    name = "thread"

    def _make_pool(self):
        return ThreadPoolExecutor(max_workers=self.workers)

    def _pool_map(self, pool, fn, items, chunksize) -> List[Any]:
        return list(pool.map(fn, items))


class ProcessExecutor(_PoolExecutor):
    """Process-pool backend with graceful serial fallback.

    Tasks and their results cross a pickle boundary; ``fn`` must be a
    picklable callable (module-level function or ``functools.partial``
    over one).  If the pool cannot start or the batch cannot be
    shipped, the batch silently (minus one warning) degrades to
    :class:`SerialExecutor` -- results are identical either way by the
    determinism contract, only slower.
    """

    name = "process"

    @staticmethod
    def _mp_context():
        # never plain fork: forking a threaded parent (thread pools, BLAS)
        # can copy a held private lock into the child, which then hangs
        # forever and blocks interpreter exit on the atexit join.
        # forkserver forks workers from a clean single-threaded server;
        # spawn is the portable fallback (and the only option on Windows).
        methods = multiprocessing.get_all_start_methods()
        method = "forkserver" if "forkserver" in methods else "spawn"
        return multiprocessing.get_context(method)

    def _make_pool(self):
        return ProcessPoolExecutor(
            max_workers=self.workers, mp_context=self._mp_context()
        )

    def _pool_map(self, pool, fn, items, chunksize) -> List[Any]:
        return list(pool.map(fn, items, chunksize=chunksize))


_BACKENDS = {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
}


def get_executor(
    spec: Union[Executor, str, None] = None,
    max_workers: Optional[int] = None,
) -> Executor:
    """Resolve an executor from a backend name, instance, or ``None``.

    ``None`` means serial.  Strings accept an optional worker count
    suffix: ``"process:4"`` is a 4-worker process pool.  An
    :class:`Executor` instance passes through unchanged (``max_workers``
    must then be omitted).
    """
    if spec is None:
        return SerialExecutor()
    if isinstance(spec, Executor):
        if max_workers is not None:
            raise ValueError("max_workers only applies to string backend specs")
        return spec
    name, _, count = str(spec).partition(":")
    name = name.strip().lower()
    if name not in _BACKENDS:
        raise ValueError(
            f"unknown executor backend {spec!r}; "
            f"expected one of {sorted(_BACKENDS)}"
        )
    if count:
        if max_workers is not None:
            raise ValueError("worker count given both in spec and max_workers")
        max_workers = int(count)
    if name == "serial":
        if max_workers not in (None, 1):
            raise ValueError("serial backend does not take workers")
        return SerialExecutor()
    return _BACKENDS[name](max_workers=max_workers)
