"""Signature normalization for tester-to-tester transfer (Figure 5).

The paper's runtime diagram contains explicit "Signature normalization"
and "Normalization" boxes: the calibration relationships are extracted
from *normalized* signatures so they survive tester variations (source
level drift, filter tolerance, cable loss) between the calibration
insertion and the production floor -- or between two different testers.

:class:`GoldenDeviceNormalizer` implements the standard industrial
scheme: a known *golden device* is measured on each tester; production
signatures are divided, bin by bin, by that tester's golden signature.
Any multiplicative, possibly frequency-dependent path-gain difference
between testers cancels exactly:

    s_prod(f) / g_prod(f) = s_cal(f) / g_cal(f)

whenever tester differences act as a linear filter on the captured
baseband response.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["GoldenDeviceNormalizer"]


class GoldenDeviceNormalizer:
    """Bin-wise ratio normalization against a golden-device signature.

    Parameters
    ----------
    golden_signature:
        FFT-magnitude signature of the golden device *on this tester*.
    floor:
        Bins where the golden signature is below ``floor`` times its
        maximum carry little reference energy; dividing by them would
        amplify measurement noise into the normalized features, so they
        are scaled by the global reference level instead.  The default
        (3 %) keeps the ratio trick to solidly-measured bins.
    """

    def __init__(self, golden_signature: np.ndarray, floor: float = 0.03):
        golden = np.asarray(golden_signature, dtype=float)
        if golden.ndim != 1 or len(golden) == 0:
            raise ValueError("golden signature must be a non-empty vector")
        if np.max(golden) <= 0:
            raise ValueError("golden signature is empty (all zero)")
        if not (0 < floor < 1):
            raise ValueError("floor must be in (0, 1)")
        self.golden = golden
        peak = float(np.max(golden))
        self._reference = np.where(golden >= floor * peak, golden, peak)

    def normalize(self, signature: np.ndarray) -> np.ndarray:
        """Return the normalized signature (dimensionless ratios)."""
        signature = np.asarray(signature, dtype=float)
        if signature.shape != self.golden.shape:
            raise ValueError(
                f"signature length {signature.shape} != golden {self.golden.shape}"
            )
        return signature / self._reference

    def normalize_batch(self, signatures: np.ndarray) -> np.ndarray:
        """Normalize a (n, m) batch."""
        signatures = np.asarray(signatures, dtype=float)
        if signatures.ndim != 2 or signatures.shape[1] != len(self.golden):
            raise ValueError("batch shape does not match the golden signature")
        return signatures / self._reference[None, :]

    @classmethod
    def from_board(
        cls,
        board,
        golden_device,
        stimulus,
        rng: Optional[np.random.Generator] = None,
        n_averages: int = 8,
        floor: float = 0.03,
    ) -> "GoldenDeviceNormalizer":
        """Measure the golden device on ``board`` and build the normalizer.

        Averaging a few captures keeps measurement noise out of the
        reference (a noisy reference would inject correlated error into
        every production signature).
        """
        if n_averages < 1:
            raise ValueError("n_averages must be >= 1")
        sigs = [
            board.signature(golden_device, stimulus, rng=rng)
            for _ in range(n_averages)
        ]
        return cls(np.mean(sigs, axis=0), floor=floor)
