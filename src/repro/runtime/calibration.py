"""Signature calibration: training the signature -> specification maps.

Figure 5, left box: "First, a training set of devices are measured for
their specifications as well as signature test responses.  Using
nonlinear regression techniques on the measured data, normalized
calibration relationships between the specifications and signatures are
extracted."

:class:`CalibrationSession` fits one regression pipeline per
specification, choosing among several model families by k-fold
cross-validation on the training devices.  The resulting
:class:`CalibrationModel` is the artifact shipped to the production
floor.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, Dict, Optional, Sequence, Union

import numpy as np

from repro.circuits.device import SpecSet
from repro.regression.knn import KNNRegressor
from repro.regression.linear import RidgeRegression
from repro.regression.mars import MARSRegressor
from repro.regression.model_select import select_best_model
from repro.regression.pca import PCA
from repro.regression.pipeline import Pipeline
from repro.regression.polynomial import PolynomialRidge
from repro.regression.scaling import StandardScaler
from repro.runtime.executor import (
    Executor,
    default_chunksize,
    get_executor,
    spawn_seeds,
)

__all__ = [
    "CalibrationModel",
    "CalibrationSession",
    "default_candidates",
    "measure_signatures",
]


def _capture_task(board, stimulus, n_bins, task) -> np.ndarray:
    """One pickled signature capture (module-level for ProcessExecutor)."""
    device, seed = task
    return board.signature(
        device, stimulus, rng=np.random.default_rng(seed), n_bins=n_bins
    )


def _capture_batch_task(board, stimulus, n_bins, engine, task) -> np.ndarray:
    """One pickled batched capture over a device chunk."""
    devices, seeds = task
    rngs = [np.random.default_rng(seed) for seed in seeds]
    return board.signature_batch(
        devices, stimulus, rngs=rngs, n_bins=n_bins, engine=engine
    )


def _chunk_bounds(n: int, executor, chunksize: Optional[int], align: int = 1):
    """``(start, stop)`` bounds for dispatching ``n`` devices in batches.

    Serial backends get the whole lot as one batch (maximum
    vectorization); pooled backends split it so every worker stays busy.
    Per-device RNG seeding makes the results independent of the split.

    ``align`` rounds the chunk size up to a multiple (multi-site boards
    publish ``chunk_alignment = n_sites``): crosstalk couples positional
    insertion groups, so a boundary mid-insertion would change which
    devices share an insertion and break chunking-invariance.
    """
    workers = getattr(executor, "workers", 1)
    if chunksize is None:
        chunksize = n if workers <= 1 else default_chunksize(n, workers)
    chunksize = max(1, chunksize)
    align = max(1, int(align))
    if align > 1:
        chunksize = ((chunksize + align - 1) // align) * align
    return [(i, min(i + chunksize, n)) for i in range(0, n, chunksize)]


def measure_signatures(
    board,
    stimulus,
    devices: Sequence,
    rng: np.random.Generator,
    *,
    n_bins: Optional[int] = None,
    executor: Optional[Union[Executor, str]] = None,
    chunksize: Optional[int] = None,
    engine: Optional[str] = None,
) -> np.ndarray:
    """Capture one signature per device as an (N, m) matrix.

    The Monte-Carlo measurement loop behind every training / validation
    set (Figure 5's left box).  Each device's measurement noise comes
    from its own RNG stream spawned from ``rng`` (one 64-bit draw
    consumed), so the matrix is bit-identical for any ``executor``
    backend -- serial, thread, or process -- any worker count, and any
    ``chunksize``.  Boards exposing ``signature_batch`` are measured in
    vectorized device chunks (the whole lot at once on a serial
    backend); others fall back to one capture per device.

    Parameters
    ----------
    board:
        :class:`~repro.loadboard.signature_path.SignatureTestBoard` (or
        anything with its ``signature`` method).
    stimulus:
        Stimulus applied to every device.
    devices:
        Device instances, one row per device in this order.
    rng:
        Master generator for the batch's measurement noise.
    n_bins:
        Signature truncation forwarded to ``board.signature``.
    executor:
        Batch backend (:mod:`repro.parallel`): an Executor instance, a
        backend name like ``"process"``, or ``None`` for serial.
    chunksize:
        Devices shipped per worker task (pooled backends only).
    engine:
        Capture engine forwarded to ``signature_batch`` (``"compiled"``,
        ``"reference"``, or ``"fast"``); ``None`` uses the board default
        (the compiled whole-lot program).
    """
    devices = list(devices)
    seeds = spawn_seeds(rng, len(devices))
    ex = get_executor(executor)
    if hasattr(board, "signature_batch"):
        if not devices:
            # an empty capture still knows its bin count: (0, m), not (0, 0)
            return board.signature_batch(
                [], stimulus, rngs=[], n_bins=n_bins, engine=engine
            )
        # vectorized path: ship device *chunks*, one batched capture per
        # task; per-device seeds keep the result independent of chunking
        tasks = [
            (devices[a:b], seeds[a:b])
            for a, b in _chunk_bounds(
                len(devices), ex, chunksize,
                getattr(board, "chunk_alignment", 1),
            )
        ]
        blocks = ex.map_tasks(
            partial(_capture_batch_task, board, stimulus, n_bins, engine),
            tasks,
            chunksize=1,
        )
        return np.vstack(blocks) if blocks else np.empty((0, 0))
    rows = ex.map_tasks(
        partial(_capture_task, board, stimulus, n_bins),
        list(zip(devices, seeds)),
        chunksize=chunksize,
    )
    return np.vstack(rows) if rows else np.empty((0, 0))


def default_candidates(n_train: int) -> Dict[str, Callable[[], Pipeline]]:
    """The standard calibration model zoo.

    The nonlinear families run PCA *on the raw (unstandardized) FFT-bin
    magnitudes first*: the signature's information lives on a
    low-dimensional manifold whose bins carry signal far above the
    noise floor, while many other bins are pure measurement noise.
    Standardizing before PCA would inflate those noise bins to unit
    variance and poison the components; centering alone preserves the
    natural signal-to-noise ordering.  Polynomial degree and component
    count adapt to the training-set size (the hardware experiment has
    only 28 calibration devices).
    """
    n_pc = max(2, min(4, n_train // 12))
    poly_degree = 3 if n_train >= 60 else 2

    def ridge(alpha: float) -> Callable[[], Pipeline]:
        return lambda: Pipeline([StandardScaler(), RidgeRegression(alpha=alpha)])

    def pca_poly(n: int, degree: int, alpha: float) -> Callable[[], Pipeline]:
        return lambda: Pipeline(
            [PCA(n), StandardScaler(), PolynomialRidge(degree=degree, alpha=alpha)]
        )

    candidates: Dict[str, Callable[[], Pipeline]] = {
        "ridge_0.1": ridge(0.1),
        "ridge_1": ridge(1.0),
        "ridge_10": ridge(10.0),
        "pca2_poly2": pca_poly(2, 2, 1e-3),
        f"pca{n_pc}_poly{poly_degree}": pca_poly(n_pc, poly_degree, 1e-3),
        f"pca{n_pc}_poly2": pca_poly(n_pc, 2, 1e-3),
        "knn": lambda: Pipeline(
            [
                PCA(n_pc),
                StandardScaler(),
                KNNRegressor(k=min(5, max(2, n_train // 5))),
            ]
        ),
        "mars": lambda: Pipeline(
            [PCA(n_pc), StandardScaler(), MARSRegressor(max_terms=12)]
        ),
    }
    return candidates


@dataclass
class CalibrationModel:
    """Fitted signature -> specs mapping, one pipeline per spec."""

    spec_names: Sequence[str]
    pipelines: Dict[str, Pipeline]
    chosen: Dict[str, str]  # spec -> winning model family
    cv_scores: Dict[str, Dict[str, float]]  # spec -> family -> CV RMSE

    def predict_matrix(self, signatures: np.ndarray) -> np.ndarray:
        """Predict all specs for a batch of signatures; shape (N, n_specs)."""
        signatures = np.asarray(signatures, dtype=float)
        if signatures.ndim == 1:
            signatures = signatures[None, :]
        cols = [
            self.pipelines[name].predict(signatures) for name in self.spec_names
        ]
        return np.column_stack(cols)

    def predict(self, signature: np.ndarray) -> SpecSet:
        """Predict the spec set of one device from its signature."""
        row = self.predict_matrix(np.asarray(signature, dtype=float)[None, :])[0]
        return SpecSet.from_vector(row)

    def summary(self) -> str:
        lines = []
        for name in self.spec_names:
            score = self.cv_scores[name][self.chosen[name]]
            lines.append(
                f"{name}: {self.chosen[name]} (CV RMSE {score:.4f})"
            )
        return "\n".join(lines)


class CalibrationSession:
    """Fits a :class:`CalibrationModel` from training measurements.

    Parameters
    ----------
    spec_names:
        Order and naming of the spec columns (defaults to the gain / NF /
        IIP3 triple).
    candidates:
        Model zoo; ``None`` selects :func:`default_candidates` sized to
        the training set.
    cv_folds:
        Cross-validation folds (clipped to the training-set size).
    """

    def __init__(
        self,
        spec_names: Sequence[str] = SpecSet.NAMES,
        candidates: Optional[Dict[str, Callable[[], Pipeline]]] = None,
        cv_folds: int = 5,
    ):
        self.spec_names = tuple(spec_names)
        self.candidates = candidates
        self.cv_folds = int(cv_folds)

    def fit(
        self,
        signatures: np.ndarray,
        spec_matrix: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> CalibrationModel:
        """Fit the calibration relationships.

        Parameters
        ----------
        signatures:
            Training signatures, shape (N, m).
        spec_matrix:
            Measured training specs, shape (N, n_specs), columns ordered
            as ``spec_names``.
        rng:
            Controls the cross-validation splits.
        """
        signatures = np.asarray(signatures, dtype=float)
        spec_matrix = np.asarray(spec_matrix, dtype=float)
        if signatures.ndim != 2 or spec_matrix.ndim != 2:
            raise ValueError("signatures and spec_matrix must be 2-D")
        if len(signatures) != len(spec_matrix):
            raise ValueError("signature and spec row counts differ")
        if spec_matrix.shape[1] != len(self.spec_names):
            raise ValueError(
                f"expected {len(self.spec_names)} spec columns, "
                f"got {spec_matrix.shape[1]}"
            )
        n = len(signatures)
        if n < 8:
            raise ValueError("need at least 8 training devices")
        rng = rng if rng is not None else np.random.default_rng()
        candidates = (
            self.candidates if self.candidates is not None else default_candidates(n)
        )
        folds = min(self.cv_folds, n // 2)

        pipelines: Dict[str, Pipeline] = {}
        chosen: Dict[str, str] = {}
        scores: Dict[str, Dict[str, float]] = {}
        for j, name in enumerate(self.spec_names):
            best_name, model, cv = select_best_model(
                candidates, signatures, spec_matrix[:, j], k=folds, rng=rng
            )
            pipelines[name] = model
            chosen[name] = best_name
            scores[name] = cv
        return CalibrationModel(
            spec_names=self.spec_names,
            pipelines=pipelines,
            chosen=chosen,
            cv_scores=scores,
        )
