"""Production-test runtime: the paper's FASTest Runtime System (Figure 5).

* :mod:`repro.runtime.specs` -- datasheet limits and pass/fail binning.
* :mod:`repro.runtime.calibration` -- one-time training: measure specs on
  the RF ATE and signatures on the low-cost tester for the training
  devices, fit normalized regression relationships.
* :mod:`repro.runtime.production` -- the production flow: signature
  capture on the low-cost tester, spec prediction, binning, throughput
  accounting.
* :mod:`repro.runtime.economics` -- test-time and test-cost comparison of
  the conventional and signature flows.
* :mod:`repro.runtime.executor` -- pluggable serial / thread / process
  batch backends with deterministic per-task RNG streams (re-exported as
  :mod:`repro.parallel`).
* :mod:`repro.runtime.service` -- the streaming front end: a
  long-running, bounded-queue lot ingester over the same flow, with
  live metrics (:mod:`repro.runtime.metrics`), stream health monitoring
  (:mod:`repro.runtime.monitoring`) and a seeded wafer-map traffic
  generator (:mod:`repro.runtime.trafficgen`) for soak tests.
"""

from repro.runtime.specs import SpecificationLimit, SpecificationLimits
from repro.runtime.calibration import (
    CalibrationModel,
    CalibrationSession,
    measure_signatures,
)
from repro.runtime.executor import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    get_executor,
    spawn_generators,
    spawn_seeds,
)
from repro.runtime.production import (
    DeviceTestRecord,
    ProductionRunResult,
    ProductionTestFlow,
)
from repro.runtime.economics import (
    TesterCostModel,
    FlowEconomics,
    compare_flows,
)
from repro.runtime.binning import (
    BinningReport,
    confusion,
    guard_banded_limits,
    sweep_guard_band,
)
from repro.runtime.outlier import OutlierScore, SignatureOutlierScreen
from repro.runtime.normalization import GoldenDeviceNormalizer
from repro.runtime.monitoring import (
    GoldenSignatureMonitor,
    MonitorState,
    StreamHealth,
    StreamHealthMonitor,
)
from repro.runtime.metrics import LatencyTracker, MetricsSnapshot, ThroughputMeter
from repro.runtime.stream import Lot, ServiceClosed, StreamRecord, SubmitTimeout
from repro.runtime.service import StreamingTestService
from repro.runtime.trafficgen import LotOrder, TrafficGenerator, WaferMapProfile
from repro.runtime.diagnosis import ParameterDiagnosis, ParameterDiagnosisModel
from repro.runtime.compaction import CompactionResult, compact_test_set
from repro.runtime.artifacts import (
    TestProgram,
    load_test_program,
    save_test_program,
)

__all__ = [
    "SpecificationLimit",
    "SpecificationLimits",
    "CalibrationModel",
    "CalibrationSession",
    "measure_signatures",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "get_executor",
    "spawn_generators",
    "spawn_seeds",
    "DeviceTestRecord",
    "ProductionRunResult",
    "ProductionTestFlow",
    "TesterCostModel",
    "FlowEconomics",
    "compare_flows",
    "BinningReport",
    "confusion",
    "guard_banded_limits",
    "sweep_guard_band",
    "OutlierScore",
    "SignatureOutlierScreen",
    "GoldenDeviceNormalizer",
    "GoldenSignatureMonitor",
    "MonitorState",
    "StreamHealth",
    "StreamHealthMonitor",
    "LatencyTracker",
    "MetricsSnapshot",
    "ThroughputMeter",
    "Lot",
    "ServiceClosed",
    "StreamRecord",
    "SubmitTimeout",
    "StreamingTestService",
    "LotOrder",
    "TrafficGenerator",
    "WaferMapProfile",
    "ParameterDiagnosis",
    "ParameterDiagnosisModel",
    "CompactionResult",
    "compact_test_set",
    "TestProgram",
    "save_test_program",
    "load_test_program",
]
