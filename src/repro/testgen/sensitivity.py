"""Finite-difference sensitivity estimation (Equations 6-7).

The paper's linear model relates normalized process perturbations ``dx``
to performance perturbations ``dp = A_p dx`` and signature perturbations
``ds = A_s dx``.  Both matrices are estimated here by forward (or
central) finite differences around the nominal process point, with the
perturbations expressed as *fractions of nominal* so that parameters of
wildly different physical units share a common scale.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.circuits.parameters import ParameterSpace

__all__ = [
    "finite_difference_jacobian",
    "performance_sensitivity",
    "signature_sensitivity",
]

VectorFunction = Callable[[Dict[str, float]], np.ndarray]
BatchVectorFunction = Callable[[List[Dict[str, float]]], np.ndarray]


def finite_difference_jacobian(
    func: VectorFunction,
    space: ParameterSpace,
    rel_step: float = 0.05,
    central: bool = False,
    batch_func: Optional[BatchVectorFunction] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Jacobian of ``func`` w.r.t. normalized process deviations.

    Parameters
    ----------
    func:
        Maps a parameter dict to an output vector (specs or a signature).
        Must be deterministic -- pass noise-free evaluations.
    space:
        Process-parameter space supplying names and nominals.
    rel_step:
        Fractional perturbation of each parameter.
    central:
        Use central differences (2x the evaluations, 2nd-order accurate).
    batch_func:
        Optional vectorized evaluator: maps a *list* of parameter dicts
        to a matrix with one output row per dict.  When given, the whole
        finite-difference star (nominal plus every perturbed point) is
        evaluated in one call -- e.g. one batched load-board capture --
        and ``func`` is not called.  Rows must equal ``func`` on the same
        dicts for the Jacobian to be unchanged.

    Returns
    -------
    ``(J, baseline)`` where ``J[i, j] = d out_i / d (dx_j)`` with ``dx_j``
    the *fractional* deviation of parameter ``j``, and ``baseline`` the
    nominal output.
    """
    if not (0.0 < rel_step < 0.5):
        raise ValueError("rel_step should be a small positive fraction")
    if batch_func is not None:
        return _batched_jacobian(batch_func, space, rel_step, central)
    baseline = np.asarray(func(space.to_dict(space.nominal_vector())), dtype=float)
    if baseline.ndim != 1:
        raise ValueError("func must return a 1-D vector")
    jac = np.empty((len(baseline), len(space)))
    for j, name in enumerate(space.names()):
        plus = np.asarray(
            func(space.to_dict(space.perturbed_vector(name, rel_step))), dtype=float
        )
        if central:
            minus = np.asarray(
                func(space.to_dict(space.perturbed_vector(name, -rel_step))),
                dtype=float,
            )
            jac[:, j] = (plus - minus) / (2.0 * rel_step)
        else:
            jac[:, j] = (plus - baseline) / rel_step
    return jac, baseline


def _batched_jacobian(
    batch_func: BatchVectorFunction,
    space: ParameterSpace,
    rel_step: float,
    central: bool,
) -> Tuple[np.ndarray, np.ndarray]:
    """One-shot finite differences: the whole star in a single evaluation."""
    points = [space.to_dict(space.nominal_vector())]
    for name in space.names():
        points.append(space.to_dict(space.perturbed_vector(name, rel_step)))
        if central:
            points.append(space.to_dict(space.perturbed_vector(name, -rel_step)))
    outs = np.asarray(batch_func(points), dtype=float)
    if outs.ndim != 2 or len(outs) != len(points):
        raise ValueError("batch_func must return one output row per point")
    baseline = outs[0].copy()
    jac = np.empty((outs.shape[1], len(space)))
    stride = 2 if central else 1
    for j in range(len(space)):
        plus = outs[1 + stride * j]
        if central:
            minus = outs[2 + stride * j]
            jac[:, j] = (plus - minus) / (2.0 * rel_step)
        else:
            jac[:, j] = (plus - baseline) / rel_step
    return jac, baseline


def performance_sensitivity(
    device_factory: Callable[[Dict[str, float]], "object"],
    space: ParameterSpace,
    rel_step: float = 0.05,
    central: bool = True,
) -> Tuple[np.ndarray, np.ndarray]:
    """The matrix ``A_p`` of Equation 6 (specs vs process).

    ``device_factory`` builds a DUT instance from a parameter dict; its
    ``specs()`` vector (gain dB, NF dB, IIP3 dBm) is differentiated.
    Returns ``(A_p, nominal_specs)``.
    """

    def spec_vector(params: Dict[str, float]) -> np.ndarray:
        return device_factory(params).specs().as_vector()

    return finite_difference_jacobian(spec_vector, space, rel_step, central)


def signature_sensitivity(
    signature_fn: VectorFunction,
    space: ParameterSpace,
    rel_step: float = 0.05,
    central: bool = False,
    batch_func: Optional[BatchVectorFunction] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """The matrix ``A_s`` of Equation 7 (signature vs process).

    ``signature_fn`` maps a parameter dict to the *noise-free* signature
    vector for the stimulus under evaluation.  Forward differences are the
    default: the GA calls this inside its fitness loop, and forward
    differencing halves the cost.  ``batch_func`` (one signature matrix
    for a list of parameter dicts, e.g. a batched load-board capture)
    evaluates the whole difference star in one call.  Returns
    ``(A_s, nominal_signature)``.
    """
    return finite_difference_jacobian(
        signature_fn, space, rel_step, central, batch_func=batch_func
    )
