"""Multitone stimulus encoding: the follow-on literature's alternative.

The paper optimizes PWL breakpoints; later alternate-test work often
uses *multitone* stimuli instead -- a sum of coherent tones whose
amplitudes and phases are the optimization variables.  Multitones keep
all stimulus energy on known FFT bins (every signature bin is either
signal or noise, never spectral leakage) at the cost of a higher crest
factor to manage.

:class:`MultitoneStimulus` is accepted anywhere a
:class:`~repro.dsp.waveform.PiecewiseLinearStimulus` is (both expose
``to_waveform``); :class:`MultitoneEncoding` is a drop-in replacement
for :class:`~repro.testgen.pwl.StimulusEncoding` in the genetic
optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.dsp.waveform import Waveform

__all__ = ["MultitoneStimulus", "MultitoneEncoding"]


@dataclass(frozen=True)
class MultitoneStimulus:
    """A sum of coherent tones ``sum_k a_k sin(2 pi f_k t + phi_k)``.

    Frequencies are fixed by the encoding; amplitudes are scaled down
    together if their sum (a bound on the peak) exceeds ``v_limit``, so
    the stimulus always respects the AWG range regardless of phasing.
    """

    amplitudes: np.ndarray
    phases: np.ndarray
    frequencies: np.ndarray
    duration: float
    v_limit: float

    def __post_init__(self):
        amplitudes = np.asarray(self.amplitudes, dtype=float)
        phases = np.asarray(self.phases, dtype=float)
        frequencies = np.asarray(self.frequencies, dtype=float)
        if not (len(amplitudes) == len(phases) == len(frequencies)):
            raise ValueError("amplitudes, phases, frequencies must match in length")
        if len(amplitudes) == 0:
            raise ValueError("need at least one tone")
        if np.any(amplitudes < 0):
            raise ValueError("amplitudes must be non-negative")
        v_limit = float(self.v_limit)
        if not (self.duration > 0 and v_limit > 0):
            raise ValueError("duration and v_limit must be positive")
        total = float(np.sum(amplitudes))
        if total > v_limit:
            amplitudes = amplitudes * (v_limit / total)
        object.__setattr__(self, "amplitudes", amplitudes)
        object.__setattr__(self, "phases", phases)
        object.__setattr__(self, "frequencies", frequencies)

    @property
    def n_tones(self) -> int:
        return len(self.amplitudes)

    def peak_bound(self) -> float:
        """Upper bound on the waveform peak (sum of amplitudes)."""
        return float(np.sum(self.amplitudes))

    def to_waveform(self, sample_rate: float) -> Waveform:
        """Sample the multitone at ``sample_rate``."""
        if not (sample_rate > 0):
            raise ValueError("sample_rate must be positive")
        if sample_rate < 2.0 * float(np.max(self.frequencies)):
            raise ValueError("sample rate below Nyquist for the highest tone")
        n = max(2, int(round(self.duration * sample_rate)))
        t = np.arange(n) / sample_rate
        out = np.zeros(n)
        for a, f, phi in zip(self.amplitudes, self.frequencies, self.phases):
            out += a * np.sin(2.0 * np.pi * f * t + phi)
        return Waveform(out, sample_rate)

    def crest_factor(self, sample_rate: float) -> float:
        """Peak-to-RMS ratio of the sampled stimulus."""
        wf = self.to_waveform(sample_rate)
        rms = wf.rms()
        return wf.peak() / rms if rms > 0 else np.inf


@dataclass(frozen=True)
class MultitoneEncoding:
    """Genetic encoding over tone amplitudes and phases.

    The gene is ``[a_1..a_K, phi_1..phi_K]``.  Tone frequencies sit on
    the coherent bin grid ``k / duration`` so every tone lands exactly
    on a signature FFT bin.

    Parameters
    ----------
    n_tones:
        Number of tones (gene length is ``2 * n_tones``).
    duration:
        Stimulus/capture duration, seconds.
    v_limit:
        AWG amplitude bound (enforced through the amplitude-sum rule).
    first_bin, bin_step:
        Tone ``k`` sits at ``(first_bin + k * bin_step) / duration`` Hz.
    """

    n_tones: int = 8
    duration: float = 5e-6
    v_limit: float = 0.4
    first_bin: int = 1
    bin_step: int = 2  # odd-ish spacing keeps IM products off the tones

    def __post_init__(self):
        if self.n_tones < 1:
            raise ValueError("n_tones must be >= 1")
        if self.duration <= 0 or self.v_limit <= 0:
            raise ValueError("duration and v_limit must be positive")
        if self.first_bin < 1 or self.bin_step < 1:
            raise ValueError("first_bin and bin_step must be >= 1")

    def frequencies(self) -> np.ndarray:
        bins = self.first_bin + self.bin_step * np.arange(self.n_tones)
        return bins / self.duration

    @property
    def n_breakpoints(self) -> int:
        """Gene length (named for interface parity with StimulusEncoding)."""
        return 2 * self.n_tones

    # ------------------------------------------------------------------
    # codec (the StimulusEncoding interface)
    # ------------------------------------------------------------------
    def decode(self, gene: np.ndarray) -> MultitoneStimulus:
        gene = np.asarray(gene, dtype=float)
        if gene.shape != (2 * self.n_tones,):
            raise ValueError(
                f"gene must have {2 * self.n_tones} entries, got {gene.shape}"
            )
        amplitudes = np.clip(gene[: self.n_tones], 0.0, self.v_limit)
        phases = gene[self.n_tones :]
        return MultitoneStimulus(
            amplitudes=amplitudes,
            phases=phases,
            frequencies=self.frequencies(),
            duration=self.duration,
            v_limit=self.v_limit,
        )

    def encode(self, stimulus: MultitoneStimulus) -> np.ndarray:
        if stimulus.n_tones != self.n_tones:
            raise ValueError("tone count mismatch")
        return np.concatenate([stimulus.amplitudes, stimulus.phases])

    def bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        lower = np.concatenate(
            [np.zeros(self.n_tones), np.zeros(self.n_tones)]
        )
        upper = np.concatenate(
            [np.full(self.n_tones, self.v_limit), np.full(self.n_tones, 2 * np.pi)]
        )
        return lower, upper

    def seed_genes(self, rng: np.random.Generator, n_random: int = 4) -> np.ndarray:
        """Structured seeds: flat combs at several drive levels.

        Newman phases (``phi_k = pi k^2 / K``) give near-minimal crest
        factor; zero phases give maximal crest -- both are useful
        starting shapes, at an amplitude ladder like the PWL seeds.
        """
        k = np.arange(self.n_tones)
        newman = np.pi * k**2 / self.n_tones
        zeros = np.zeros(self.n_tones)
        seeds = []
        for scale in (0.2, 0.4, 0.6, 0.9):
            flat = np.full(self.n_tones, scale * self.v_limit / self.n_tones)
            seeds.append(np.concatenate([flat, newman]))
            seeds.append(np.concatenate([flat, zeros]))
        for _ in range(max(0, n_random)):
            amp = rng.uniform(0, self.v_limit / self.n_tones, self.n_tones)
            ph = rng.uniform(0, 2 * np.pi, self.n_tones)
            seeds.append(np.concatenate([amp, ph]))
        return np.vstack(seeds)
