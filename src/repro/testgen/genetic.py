"""Real-coded genetic algorithm (the paper's Section 3.1 optimizer).

"The resulting objective function is minimized by optimizing a piecewise
linear baseband test stimulus using a genetic algorithm.  Breakpoints of
the PWL stimulus are encoded as a genetic string, and successive
generations of the genetic optimization yield a waveform with decreasing
values of the objective function."

Implemented from scratch (following Goldberg's classic scheme adapted to
real-valued genes): tournament selection, BLX-alpha blend crossover,
gaussian mutation scaled to the gene bounds, and elitism.  Minimizes the
supplied fitness function.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.runtime.executor import Executor, SerialExecutor

__all__ = ["GAConfig", "GAResult", "GeneticAlgorithm"]


@dataclass(frozen=True)
class GAConfig:
    """Genetic-algorithm hyperparameters.

    The paper ran "five iterations of a genetic algorithm"; five
    generations is therefore the default.
    """

    population_size: int = 24
    generations: int = 5
    tournament_size: int = 3
    crossover_rate: float = 0.9
    blend_alpha: float = 0.3
    mutation_rate: float = 0.15
    mutation_scale: float = 0.10  # fraction of each gene's range
    elite_count: int = 2

    def __post_init__(self):
        if self.population_size < 4:
            raise ValueError("population_size must be >= 4")
        if self.generations < 1:
            raise ValueError("generations must be >= 1")
        if not (2 <= self.tournament_size <= self.population_size):
            raise ValueError("tournament_size must be in [2, population_size]")
        if not (0.0 <= self.crossover_rate <= 1.0):
            raise ValueError("crossover_rate must be in [0, 1]")
        if not (0.0 <= self.mutation_rate <= 1.0):
            raise ValueError("mutation_rate must be in [0, 1]")
        if self.blend_alpha < 0 or self.mutation_scale <= 0:
            raise ValueError("blend_alpha must be >= 0 and mutation_scale > 0")
        if not (0 <= self.elite_count < self.population_size):
            raise ValueError("elite_count must be in [0, population_size)")


@dataclass
class GAResult:
    """Outcome of one GA run."""

    best_gene: np.ndarray
    best_fitness: float
    #: per-generation (best, mean) fitness, generation 0 = initial pop
    history: List[Tuple[float, float]] = field(default_factory=list)
    evaluations: int = 0

    @property
    def improvement(self) -> float:
        """Initial-best minus final-best fitness (>= 0 for a working GA)."""
        if not self.history:
            return 0.0
        return self.history[0][0] - self.history[-1][0]


class GeneticAlgorithm:
    """Bounded real-parameter GA minimizing ``fitness(gene)``.

    Parameters
    ----------
    fitness:
        Callable mapping a gene vector to a scalar to minimize.  Must be
        deterministic for reproducible runs.
    lower, upper:
        Per-gene bounds.
    config:
        Hyperparameters.
    rng:
        Random generator controlling all stochastic choices.
    executor:
        Batch backend evaluating each generation's fitnesses
        (:class:`repro.parallel.ProcessExecutor` et al.); ``None`` keeps
        the classic serial loop.  Because ``fitness`` is required to be
        deterministic and results are order-preserving, every backend
        yields the same :class:`GAResult` bit for bit.
    """

    def __init__(
        self,
        fitness: Callable[[np.ndarray], float],
        lower: Sequence[float],
        upper: Sequence[float],
        config: GAConfig = GAConfig(),
        rng: Optional[np.random.Generator] = None,
        executor: Optional[Executor] = None,
    ):
        self.fitness = fitness
        self.lower = np.asarray(lower, dtype=float)
        self.upper = np.asarray(upper, dtype=float)
        if self.lower.shape != self.upper.shape or self.lower.ndim != 1:
            raise ValueError("lower/upper must be 1-D and equal length")
        if np.any(self.lower >= self.upper):
            raise ValueError("each lower bound must be below its upper bound")
        self.config = config
        self.rng = rng if rng is not None else np.random.default_rng()
        self.executor = executor if executor is not None else SerialExecutor()
        self._range = self.upper - self.lower

    # ------------------------------------------------------------------
    # operators
    # ------------------------------------------------------------------
    def _random_gene(self) -> np.ndarray:
        return self.rng.uniform(self.lower, self.upper)

    def _tournament(self, fitnesses: np.ndarray) -> int:
        """Index of the tournament winner (lowest fitness)."""
        contenders = self.rng.integers(0, len(fitnesses), size=self.config.tournament_size)
        return int(contenders[np.argmin(fitnesses[contenders])])

    def _crossover(self, p1: np.ndarray, p2: np.ndarray) -> np.ndarray:
        """BLX-alpha blend: child sampled from the expanded parent interval."""
        alpha = self.config.blend_alpha
        low = np.minimum(p1, p2)
        high = np.maximum(p1, p2)
        span = high - low
        child = self.rng.uniform(low - alpha * span, high + alpha * span)
        return np.clip(child, self.lower, self.upper)

    def _mutate(self, gene: np.ndarray) -> np.ndarray:
        mask = self.rng.random(len(gene)) < self.config.mutation_rate
        if not np.any(mask):
            return gene
        noise = self.rng.normal(0.0, self.config.mutation_scale, size=len(gene))
        mutated = gene + mask * noise * self._range
        return np.clip(mutated, self.lower, self.upper)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self, initial_population: Optional[np.ndarray] = None) -> GAResult:
        """Evolve for ``config.generations`` generations.

        ``initial_population`` (shape (p, n_genes)) seeds the first
        generation; missing rows are filled with uniform random genes.
        """
        cfg = self.config
        n_genes = len(self.lower)
        population = np.empty((cfg.population_size, n_genes))
        provided = 0
        if initial_population is not None:
            seed = np.asarray(initial_population, dtype=float)
            if seed.ndim != 2 or seed.shape[1] != n_genes:
                raise ValueError("initial_population must be (p, n_genes)")
            provided = min(len(seed), cfg.population_size)
            population[:provided] = np.clip(seed[:provided], self.lower, self.upper)
        for i in range(provided, cfg.population_size):
            population[i] = self._random_gene()

        evaluations = 0

        def evaluate(pop: np.ndarray) -> np.ndarray:
            nonlocal evaluations
            evaluations += len(pop)
            values = self.executor.map_tasks(self.fitness, list(pop))
            return np.array([float(v) for v in values])

        fitnesses = evaluate(population)
        history: List[Tuple[float, float]] = [
            (float(fitnesses.min()), float(fitnesses.mean()))
        ]

        for _ in range(cfg.generations):
            order = np.argsort(fitnesses)
            next_pop = [population[i].copy() for i in order[: cfg.elite_count]]
            while len(next_pop) < cfg.population_size:
                i1 = self._tournament(fitnesses)
                if self.rng.random() < cfg.crossover_rate:
                    i2 = self._tournament(fitnesses)
                    child = self._crossover(population[i1], population[i2])
                else:
                    child = population[i1].copy()
                next_pop.append(self._mutate(child))
            population = np.vstack(next_pop)
            fitnesses = evaluate(population)
            history.append((float(fitnesses.min()), float(fitnesses.mean())))

        best = int(np.argmin(fitnesses))
        return GAResult(
            best_gene=population[best].copy(),
            best_fitness=float(fitnesses[best]),
            history=history,
            evaluations=evaluations,
        )
