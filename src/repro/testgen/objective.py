"""The stimulus-optimization objective (Equation 10 and Section 3.1).

``F = (1/n) sum_i sigma_i^2`` with
``sigma_i^2 = sigma_p,i^2 + sigma_m^2 ||a_i||^2``: the first term is the
mapping residual of Equation 8 (how much of the spec's process
sensitivity the signature cannot explain), the second the measurement
noise amplified by the mapping row.  A good stimulus drives both down
simultaneously -- it must make the signature sensitive to every process
direction the specs care about, *and* keep the mapping gains small so
noise does not swamp the prediction.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.testgen.mapping import LinearSignatureMap

__all__ = [
    "signature_noise_std",
    "prediction_error_variances",
    "signature_test_objective",
]


def signature_noise_std(noise_vrms: float, n_samples: int) -> float:
    """Per-bin noise std of an FFT-magnitude signature.

    Additive time-domain noise of standard deviation ``sigma`` spreads
    over the single-sided amplitude spectrum of an ``N``-sample record
    with per-bin standard deviation ``sigma * sqrt(2 / N)`` (for bins
    carrying signal, where the magnitude operates in its linear regime).
    """
    if noise_vrms < 0:
        raise ValueError("noise_vrms must be non-negative")
    if n_samples < 1:
        raise ValueError("n_samples must be >= 1")
    return noise_vrms * math.sqrt(2.0 / n_samples)


def prediction_error_variances(
    a_p: np.ndarray,
    a_s: np.ndarray,
    sigma_m: float,
    spec_scales: Optional[Sequence[float]] = None,
    rcond: float = 1e-10,
) -> np.ndarray:
    """Per-spec total error variances for a candidate stimulus.

    Parameters
    ----------
    a_p, a_s:
        Sensitivity matrices (Equations 6-7).
    sigma_m:
        Per-component signature measurement-noise std.
    spec_scales:
        Optional per-spec scale factors; each spec's row of ``A_p`` is
        divided by its scale before solving, so the returned variances
        are in scaled units.  Use this when the specs' natural units are
        not comparable.  The gain/NF/IIP3 triple is already all-dB, so
        the default (no scaling) matches the paper.
    rcond:
        Pseudoinverse truncation threshold.
    """
    a_p = np.asarray(a_p, dtype=float)
    if spec_scales is not None:
        scales = np.asarray(spec_scales, dtype=float)
        if scales.shape != (a_p.shape[0],):
            raise ValueError("spec_scales must have one entry per spec")
        if np.any(scales <= 0):
            raise ValueError("spec_scales must be positive")
        a_p = a_p / scales[:, None]
    mapping = LinearSignatureMap.from_sensitivities(
        a_p, a_s, sigma_m=sigma_m, rcond=rcond
    )
    return mapping.total_error_variances(sigma_m)


def signature_test_objective(
    a_p: np.ndarray,
    a_s: np.ndarray,
    sigma_m: float,
    spec_scales: Optional[Sequence[float]] = None,
    rcond: float = 1e-10,
) -> float:
    """The scalar objective ``F`` minimized by the genetic optimizer."""
    variances = prediction_error_variances(a_p, a_s, sigma_m, spec_scales, rcond)
    return float(np.mean(variances))
