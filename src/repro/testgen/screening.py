"""Process-parameter screening (Section 4.1's first step).

"The following parameters were considered variable: ... Other parameters
were found to have negligible impact on the performance."  Before any
stimulus optimization, the paper screened the process space down to the
parameters that actually move the specifications.  This module automates
that: rank every parameter by how much one process-sigma of it moves the
spec vector, and drop the ones below a relative threshold.

Screening matters beyond bookkeeping: every retained parameter costs two
signature simulations per GA fitness evaluation (central differences),
so halving the space nearly halves test-generation time.

The score combines first- *and* second-order spec movement.  A purely
linear screen would discard any parameter the design centers at an
extremum -- the LNA's tank capacitor, for instance, sits exactly at
resonance, where the gain's first derivative vanishes but one process
sigma of detuning still costs real gain through the curvature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.circuits.parameters import ParameterSpace

__all__ = ["ScreeningReport", "screen_parameters"]


@dataclass(frozen=True)
class ScreeningReport:
    """Outcome of a parameter screening pass."""

    #: parameter name -> spec-movement score (dB per process sigma, RMS
    #: over specs)
    scores: Dict[str, float]
    kept: Tuple[str, ...]
    dropped: Tuple[str, ...]
    threshold: float

    def ranking(self) -> List[Tuple[str, float]]:
        """Parameters sorted by descending influence."""
        return sorted(self.scores.items(), key=lambda kv: -kv[1])

    def summary(self) -> str:
        lines = [
            f"{'parameter':>12s}  {'score':>9s}  {'verdict':>8s}"
        ]
        for name, score in self.ranking():
            verdict = "keep" if name in self.kept else "drop"
            lines.append(f"{name:>12s}  {score:9.4f}  {verdict:>8s}")
        lines.append(
            f"kept {len(self.kept)} of {len(self.scores)} parameters "
            f"(threshold {self.threshold:.3g} of the strongest)"
        )
        return "\n".join(lines)


def screen_parameters(
    device_factory: Callable[[Dict[str, float]], object],
    space: ParameterSpace,
    rel_threshold: float = 0.02,
    rel_step: float = 0.05,
) -> Tuple[ParameterSpace, ScreeningReport]:
    """Rank parameters by spec influence and drop the negligible ones.

    Parameters
    ----------
    device_factory:
        Builds a DUT from a parameter dict (its ``specs()`` are
        differentiated).
    space:
        Candidate parameter space.
    rel_threshold:
        Parameters scoring below ``rel_threshold`` times the strongest
        parameter's score are dropped.  At the 2 % default a dropped
        parameter contributes under 2 % of the dominant error term.
    rel_step:
        Finite-difference step.

    Returns
    -------
    ``(reduced_space, report)``.  At least one parameter is always kept.
    """
    if not (0.0 <= rel_threshold < 1.0):
        raise ValueError("rel_threshold must be in [0, 1)")

    def spec_vector(params: Dict[str, float]) -> np.ndarray:
        return np.asarray(device_factory(params).specs().as_vector(), dtype=float)

    base = spec_vector(space.to_dict(space.nominal_vector()))
    sigma = space.fractional_std_vector()
    scores_vec = np.empty(len(space))
    for j, name in enumerate(space.names()):
        plus = spec_vector(space.to_dict(space.perturbed_vector(name, rel_step)))
        minus = spec_vector(space.to_dict(space.perturbed_vector(name, -rel_step)))
        first = (plus - minus) / (2.0 * rel_step)  # d spec / d (dx)
        second = (plus - 2.0 * base + minus) / rel_step**2  # d^2 spec / d (dx)^2
        # spec movement at one process sigma: linear + curvature terms
        move = first * sigma[j] + 0.5 * second * sigma[j] ** 2
        scores_vec[j] = float(np.sqrt(np.mean(move**2)))
    scores = dict(zip(space.names(), scores_vec.tolist()))
    top = float(np.max(scores_vec))
    if top == 0.0:
        raise ValueError("no parameter moves any specification")
    keep_mask = scores_vec >= rel_threshold * top
    kept = tuple(n for n, k in zip(space.names(), keep_mask) if k)
    dropped = tuple(n for n, k in zip(space.names(), keep_mask) if not k)
    reduced = space.subset(list(kept))
    report = ScreeningReport(
        scores=scores, kept=kept, dropped=dropped, threshold=rel_threshold
    )
    return reduced, report
