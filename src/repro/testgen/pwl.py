"""PWL stimulus encoding for the genetic optimizer.

The genetic string is the vector of breakpoint voltages of a
piecewise-linear stimulus on a uniform time grid (Section 3.1).  This
module supplies the gene <-> stimulus codec, the gene bounds, and a set
of structured seed waveforms (ramps, bursts, multilevel staircases) that
give the first GA generation useful diversity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.dsp.waveform import PiecewiseLinearStimulus

__all__ = ["StimulusEncoding"]


@dataclass(frozen=True)
class StimulusEncoding:
    """Fixed geometry of the PWL stimulus being optimized.

    Attributes
    ----------
    n_breakpoints:
        Number of PWL levels (= gene length).
    duration:
        Stimulus duration in seconds (5 us in the paper's simulation
        experiment, 5 ms in the hardware experiment).
    v_limit:
        AWG amplitude bound; genes live in ``[-v_limit, v_limit]``.
    """

    n_breakpoints: int = 16
    duration: float = 5e-6
    v_limit: float = 0.4

    def __post_init__(self):
        if self.n_breakpoints < 2:
            raise ValueError("need at least two breakpoints")
        if self.duration <= 0 or self.v_limit <= 0:
            raise ValueError("duration and v_limit must be positive")

    # ------------------------------------------------------------------
    # codec
    # ------------------------------------------------------------------
    def decode(self, gene: np.ndarray) -> PiecewiseLinearStimulus:
        """Gene vector -> stimulus."""
        gene = np.asarray(gene, dtype=float)
        if gene.shape != (self.n_breakpoints,):
            raise ValueError(
                f"gene must have {self.n_breakpoints} entries, got {gene.shape}"
            )
        return PiecewiseLinearStimulus(gene, self.duration, self.v_limit)

    def encode(self, stimulus: PiecewiseLinearStimulus) -> np.ndarray:
        """Stimulus -> gene vector."""
        if stimulus.n_breakpoints != self.n_breakpoints:
            raise ValueError("breakpoint count mismatch")
        return stimulus.to_gene()

    def bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        """(lower, upper) gene bounds for the GA."""
        lower = np.full(self.n_breakpoints, -self.v_limit)
        upper = np.full(self.n_breakpoints, self.v_limit)
        return lower, upper

    # ------------------------------------------------------------------
    # seeds
    # ------------------------------------------------------------------
    def seed_genes(self, rng: np.random.Generator, n_random: int = 4) -> np.ndarray:
        """A diverse starting population.

        The objective depends critically on how hard the DUT is driven:
        too soft and the third-order term disappears into the noise, too
        hard and the drive-level penalty fires.  The seeds therefore form
        an *amplitude ladder* -- ramps, triangles and flats at several
        fractions of full scale -- plus ``n_random`` random genes, so the
        first generation already brackets the optimal drive level.
        """
        n = self.n_breakpoints
        v = self.v_limit
        t = np.linspace(0.0, 1.0, n)
        ramp = 2.0 * t - 1.0
        triangle = 1.0 - 2.0 * np.abs(2.0 * t - 1.0)
        staircase = 2.0 * np.floor(t * 4) / 3.0 - 1.0
        seeds: List[np.ndarray] = []
        for scale in (0.2, 0.35, 0.5, 0.7, 0.9):
            seeds.append(v * scale * ramp)
            seeds.append(np.full(n, v * scale))
        for scale in (0.3, 0.6):
            seeds.append(v * scale * triangle)
            seeds.append(v * scale * staircase)
        for scale in (0.25, 0.5, 0.75):
            for _ in range(max(1, n_random // 3)):
                seeds.append(rng.uniform(-v * scale, v * scale, size=n))
        return np.clip(np.vstack(seeds), -v, v)
