"""The linear signature-to-performance mapping (Equations 8-9).

Given the sensitivity matrices ``A_p`` (n specs x k parameters) and
``A_s`` (m signature components x k parameters), the paper seeks the
transformation ``A`` with ``A_p = A A_s``.  Exact equality rarely holds,
so each row is solved in the least-squares sense:

    min_{a_i} || a_p,i^T - a_i^T A_s ||_2        (Equation 8)

whose minimum-norm solution is computed through the SVD pseudoinverse of
``A_s`` (Equation 9).  The residual of row ``i`` is the irreducible
process-tracking error ``sigma_p,i``; the row norm ``||a_i||`` multiplies
the signature measurement noise in the total error (Equation 10).

**Rank selection.**  A raw pseudoinverse inverts every numerically
nonzero singular value of ``A_s``; directions that barely move the
signature get amplification factors of ``1/s_j`` and the noise term of
Equation 10 explodes.  Equation 10 itself supplies the remedy: truncating
the SVD at rank ``r`` trades residual (decreasing in ``r``) against noise
amplification (increasing in ``r``), and both terms are cheap to evaluate
for every ``r`` from one SVD.  ``from_sensitivities`` therefore picks the
truncation rank that minimizes the mean total error variance whenever
``sigma_m`` is given.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["LinearSignatureMap"]


@dataclass(frozen=True)
class LinearSignatureMap:
    """Least-squares linear map from signature perturbations to spec
    perturbations.

    Attributes
    ----------
    matrix:
        ``A`` of shape (n_specs, m_signature); ``dp = A ds``.
    residuals:
        ``sigma_p,i`` per spec: the norm of the unexplained part of the
        spec's process sensitivity (Equation 8 at the optimum).
    row_norms:
        ``||a_i||_2`` per spec, the measurement-noise amplification of
        Equation 10.
    rank:
        SVD truncation rank actually used.
    singular_values:
        Full singular-value spectrum of ``A_s`` (diagnostics).
    """

    matrix: np.ndarray
    residuals: np.ndarray
    row_norms: np.ndarray
    rank: int
    singular_values: np.ndarray

    @classmethod
    def from_sensitivities(
        cls,
        a_p: np.ndarray,
        a_s: np.ndarray,
        sigma_m: Optional[float] = None,
        rank: Optional[int] = None,
        rcond: float = 1e-8,
    ) -> "LinearSignatureMap":
        """Solve ``A = A_p A_s^+`` via a rank-truncated SVD (Equation 9).

        Parameters
        ----------
        a_p:
            Performance sensitivities, shape (n, k).
        a_s:
            Signature sensitivities, shape (m, k).
        sigma_m:
            Per-component signature noise std.  When given (and ``rank``
            is not), the truncation rank minimizing the mean Equation-10
            error variance is chosen automatically.
        rank:
            Explicit truncation rank (overrides the automatic choice).
        rcond:
            Relative singular-value floor; directions below
            ``rcond * s_max`` are never inverted regardless of the other
            settings.
        """
        a_p = np.asarray(a_p, dtype=float)
        a_s = np.asarray(a_s, dtype=float)
        if a_p.ndim != 2 or a_s.ndim != 2:
            raise ValueError("A_p and A_s must be matrices")
        if a_p.shape[1] != a_s.shape[1]:
            raise ValueError(
                f"parameter-count mismatch: A_p has {a_p.shape[1]} columns, "
                f"A_s has {a_s.shape[1]}"
            )

        u, s, vt = np.linalg.svd(a_s, full_matrices=False)
        if s.size == 0 or s[0] == 0.0:
            m = np.zeros((a_p.shape[0], a_s.shape[0]))
            return cls(
                matrix=m,
                residuals=np.linalg.norm(a_p, axis=1),
                row_norms=np.zeros(a_p.shape[0]),
                rank=0,
                singular_values=s.copy(),
            )
        max_rank = int(np.count_nonzero(s > rcond * s[0]))

        # c[i, j] = projection of spec row i on right-singular direction j
        c = a_p @ vt.T  # (n, k)
        c2 = c**2
        row_sq = np.sum(a_p**2, axis=1)  # ||a_p,i||^2

        # cumulative residual^2 and noise-gain^2 per truncation rank
        explained = np.cumsum(c2[:, :max_rank], axis=1)  # (n, r)
        resid_sq = np.maximum(row_sq[:, None] - explained, 0.0)
        gain_sq = np.cumsum(c2[:, :max_rank] / (s[:max_rank] ** 2), axis=1)

        if rank is not None:
            if not (1 <= rank <= max_rank):
                raise ValueError(f"rank must be in [1, {max_rank}]")
            use_rank = int(rank)
        elif sigma_m is not None:
            totals = np.mean(resid_sq + (sigma_m**2) * gain_sq, axis=0)
            use_rank = int(np.argmin(totals)) + 1
        else:
            use_rank = max_rank

        r = use_rank
        pinv = (vt[:r].T / s[:r]) @ u[:, :r].T  # (k, m)
        matrix = a_p @ pinv
        return cls(
            matrix=matrix,
            residuals=np.sqrt(resid_sq[:, r - 1]),
            row_norms=np.sqrt(gain_sq[:, r - 1]),
            rank=r,
            singular_values=s.copy(),
        )

    @property
    def n_specs(self) -> int:
        return self.matrix.shape[0]

    @property
    def n_signature(self) -> int:
        return self.matrix.shape[1]

    def predict_delta(self, delta_signature: np.ndarray) -> np.ndarray:
        """Predicted spec perturbation for a signature perturbation.

        Accepts a single perturbation vector (m,) or a batch (N, m);
        returns (n,) or (N, n) accordingly.
        """
        ds = np.asarray(delta_signature, dtype=float)
        if ds.ndim == 1:
            if ds.shape[0] != self.n_signature:
                raise ValueError(
                    f"signature length {ds.shape[0]} != map width {self.n_signature}"
                )
            return self.matrix @ ds
        if ds.ndim == 2:
            if ds.shape[1] != self.n_signature:
                raise ValueError(
                    f"signature length {ds.shape[1]} != map width {self.n_signature}"
                )
            return ds @ self.matrix.T
        raise ValueError("delta_signature must be 1-D or 2-D")

    def total_error_variances(self, sigma_m: float) -> np.ndarray:
        """Per-spec total error variance of Equation 10.

        ``sigma_i^2 = sigma_p,i^2 + sigma_m^2 ||a_i||^2`` where ``sigma_m``
        is the per-component signature measurement-noise standard
        deviation.
        """
        if sigma_m < 0:
            raise ValueError("sigma_m must be non-negative")
        return self.residuals**2 + (sigma_m**2) * self.row_norms**2
