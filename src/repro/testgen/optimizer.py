"""End-to-end stimulus optimization (Section 3.1).

:class:`SignatureStimulusOptimizer` wires the whole test-generation loop
together:

1. ``A_p`` is estimated once from the device model.
2. For each candidate gene, the PWL stimulus is decoded, the signature
   sensitivity ``A_s`` is estimated by noise-free finite differences
   through the load-board simulation, and the objective
   ``F = mean(sigma_p,i^2 + sigma_m^2 ||a_i||^2)`` is evaluated.
3. A genetic algorithm evolves the breakpoints for a handful of
   generations (five in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.device import RFDevice
from repro.circuits.parameters import ParameterSpace
from repro.dsp.waveform import PiecewiseLinearStimulus
from repro.loadboard.signature_path import SignaturePathConfig, SignatureTestBoard
from repro.runtime.executor import Executor
from repro.testgen.genetic import GAConfig, GAResult, GeneticAlgorithm
from repro.testgen.mapping import LinearSignatureMap
from repro.testgen.objective import signature_noise_std, signature_test_objective
from repro.testgen.pwl import StimulusEncoding
from repro.testgen.sensitivity import performance_sensitivity, signature_sensitivity

__all__ = ["OptimizationResult", "SignatureStimulusOptimizer"]

DeviceFactory = Callable[[Dict[str, float]], RFDevice]


@dataclass
class OptimizationResult:
    """Everything the optimization run produced."""

    stimulus: PiecewiseLinearStimulus
    gene: np.ndarray
    objective_value: float
    ga_result: GAResult
    a_p: np.ndarray
    a_s: np.ndarray
    mapping: LinearSignatureMap
    per_spec_error_std: np.ndarray
    sigma_m: float

    def summary(self, spec_names: Sequence[str] = ("gain_db", "nf_db", "iip3_dbm")) -> str:
        """Human-readable report of the predicted per-spec errors."""
        lines = [
            f"objective F = {self.objective_value:.6g} "
            f"(GA improvement {self.ga_result.improvement:.3g}, "
            f"{self.ga_result.evaluations} evaluations)"
        ]
        for name, err in zip(spec_names, self.per_spec_error_std):
            lines.append(f"  predicted std({name}) = {err:.4f}")
        return "\n".join(lines)


class SignatureStimulusOptimizer:
    """Optimizes the PWL baseband stimulus for a DUT family.

    Parameters
    ----------
    board_config:
        Signature-path setup the stimulus will be used with.
    device_factory:
        Builds a DUT instance from a process-parameter dict (e.g.
        ``LNA900``); this is the "simulation netlist" role.  For the
        hardware flow, pass a behavioral-model factory instead -- exactly
        what the paper did when the RF2401 netlist was unavailable.
    space:
        Statistical parameter space of the manufacturing process.
    encoding:
        PWL geometry (breakpoint count, duration, amplitude bound).
    sigma_m:
        Per-component signature noise std; default derives it from the
        digitizer noise and the capture length (Equation 10's noise term).
    signature_bins:
        Number of FFT bins kept as the signature (``None`` = all).
    rel_step:
        Finite-difference perturbation size.
    ga_config:
        Genetic-algorithm settings (defaults: 5 generations, as in the
        paper).
    executor:
        Batch backend (:mod:`repro.parallel`) evaluating each GA
        generation's objective values concurrently; ``None`` = serial.
        The objective is deterministic (noise-free finite differences),
        so the optimized stimulus is backend-independent.
    board:
        Prebuilt capture front end to optimize against instead of a
        fresh ``SignatureTestBoard(board_config)`` -- any object with
        the board surface (``signature`` / ``signature_batch`` /
        ``overdrive_snapshot``), e.g. a
        :class:`~repro.loadboard.sites.MultiSiteBoard` or a
        :class:`~repro.loadboard.scenario_paths.BistSignaturePath`.
        ``board_config`` then only supplies the capture geometry for
        the ``sigma_m`` default and the coupling mode for the
        overdrive margin (scenario configs alias those fields).
    """

    def __init__(
        self,
        board_config: SignaturePathConfig,
        device_factory: DeviceFactory,
        space: ParameterSpace,
        encoding: StimulusEncoding,
        sigma_m: Optional[float] = None,
        signature_bins: Optional[int] = None,
        rel_step: float = 0.05,
        spec_scales: Optional[Sequence[float]] = None,
        ga_config: GAConfig = GAConfig(),
        executor: Optional[Executor] = None,
        board=None,
    ):
        self.board = board if board is not None else SignatureTestBoard(board_config)
        self.device_factory = device_factory
        self.space = space
        self.encoding = encoding
        self.signature_bins = signature_bins
        self.rel_step = rel_step
        self.spec_scales = spec_scales
        self.ga_config = ga_config
        self.executor = executor
        if sigma_m is None:
            n_capture = int(
                round(board_config.capture_seconds * board_config.digitizer_rate)
            )
            sigma_m = signature_noise_std(
                board_config.digitizer_noise_vrms, n_capture
            )
        self.sigma_m = float(sigma_m)
        #: Drive levels above this multiple of the weakest device's
        #: saturation amplitude are penalized.  Tuned paths use the
        #: describing-function DUT model, physical at any drive, so only
        #: absurd levels (deep square-wave clipping, where the signature
        #: stops carrying device information) are discouraged; the
        #: wideband path uses the raw polynomial, which is only valid
        #: below the fold-back point.
        self.overdrive_margin = 0.85 if board_config.dut_coupling == "wideband" else 4.0
        self.overdrive_weight = 1e3
        self._a_p: Optional[np.ndarray] = None
        self._weakest_device: Optional[RFDevice] = None

    # ------------------------------------------------------------------
    # pieces
    # ------------------------------------------------------------------
    def performance_matrix(self) -> np.ndarray:
        """``A_p`` in process-sigma units (cached; stimulus-independent).

        Columns are scaled by each parameter's fractional standard
        deviation, so a unit perturbation means "one process sigma" and
        Equation 10's error variances come out directly in spec units.
        """
        if self._a_p is None:
            jac, _ = performance_sensitivity(
                self.device_factory, self.space, self.rel_step
            )
            self._a_p = jac * self.space.fractional_std_vector()[None, :]
        return self._a_p

    def signature_function(
        self, stimulus: PiecewiseLinearStimulus
    ) -> Callable[[Dict[str, float]], np.ndarray]:
        """Noise-free signature of a device instance for this stimulus."""

        def fn(params: Dict[str, float]) -> np.ndarray:
            device = self.device_factory(params)
            return self.board.signature(
                device, stimulus, rng=None, n_bins=self.signature_bins
            )

        return fn

    def signature_batch_function(
        self, stimulus: PiecewiseLinearStimulus
    ) -> Callable[[List[Dict[str, float]]], np.ndarray]:
        """Noise-free signatures of many device instances in one capture.

        Row ``i`` is bit-identical to :meth:`signature_function` on the
        i-th parameter dict -- the batched board path shares every
        operation with the one-device path.
        """

        def fn(param_dicts: List[Dict[str, float]]) -> np.ndarray:
            devices = [self.device_factory(p) for p in param_dicts]
            return self.board.signature_batch(
                devices, stimulus, rng=None, n_bins=self.signature_bins
            )

        return fn

    def signature_matrix(self, stimulus: PiecewiseLinearStimulus) -> np.ndarray:
        """``A_s`` in process-sigma units for a candidate stimulus.

        Central differences: the signature path is mildly nonlinear over
        the process range (compression, FFT magnitudes), and forward
        differences leak enough curvature into ``A_s`` to contaminate its
        singular directions.  The whole difference star runs as one
        batched capture -- this is the GA fitness loop's hot path.
        """
        a_s, _ = signature_sensitivity(
            self.signature_function(stimulus), self.space, self.rel_step,
            central=True,
            batch_func=self.signature_batch_function(stimulus),
        )
        return a_s * self.space.fractional_std_vector()[None, :]

    def _find_weakest_device(self) -> RFDevice:
        """The corner device with the smallest saturation amplitude.

        Scanned over the one-at-a-time parameter band edges, the nominal
        point and a fixed-seed Monte-Carlo sample (multi-parameter worst
        cases are not at the one-at-a-time corners); the drive-level
        penalty is evaluated against this device so the optimized
        stimulus stays inside every device's physical range.
        """
        if self._weakest_device is None:
            from repro.circuits.nonlinear import PolynomialNonlinearity

            candidates = [self.space.nominal_vector()]
            for name in self.space.names():
                p = self.space[name]
                for edge in (p.lower, p.upper):
                    vec = self.space.nominal_vector()
                    vec[self.space.index_of(name)] = edge
                    candidates.append(vec)
            scan_rng = np.random.default_rng(987654321)
            candidates.extend(self.space.sample(scan_rng, 128))
            best = None
            best_sat = np.inf
            for vec in candidates:
                device = self.device_factory(self.space.to_dict(vec))
                sat = PolynomialNonlinearity(
                    *device.envelope_poly()
                ).saturation_amplitude
                if sat < best_sat:
                    best_sat = sat
                    best = device
            self._weakest_device = best
        return self._weakest_device

    def overdrive_ratio(self, stimulus: PiecewiseLinearStimulus) -> float:
        """Peak drive / saturation amplitude for the weakest corner device."""
        self.board.capture(self._find_weakest_device(), stimulus, rng=None)
        ratio, _ = self.board.overdrive_snapshot()
        return ratio

    def objective(self, gene: np.ndarray) -> float:
        """GA fitness: Equation 10's mean error variance for this gene.

        A quadratic penalty keeps the drive level below
        ``overdrive_margin`` of the weakest device's saturation
        amplitude, where the cubic DUT model stops being physical.
        """
        stimulus = self.encoding.decode(gene)
        penalty = 0.0
        excess = self.overdrive_ratio(stimulus) - self.overdrive_margin
        if excess > 0.0:
            penalty = self.overdrive_weight * excess**2
        a_s = self.signature_matrix(stimulus)
        return penalty + signature_test_objective(
            self.performance_matrix(), a_s, self.sigma_m, self.spec_scales
        )

    # ------------------------------------------------------------------
    # the run
    # ------------------------------------------------------------------
    def optimize(self, rng: np.random.Generator) -> OptimizationResult:
        """Run the GA and package the winning stimulus with diagnostics."""
        lower, upper = self.encoding.bounds()
        ga = GeneticAlgorithm(
            self.objective, lower, upper, config=self.ga_config, rng=rng,
            executor=self.executor,
        )
        seeds = self.encoding.seed_genes(rng)
        result = ga.run(initial_population=seeds)

        stimulus = self.encoding.decode(result.best_gene)
        a_p = self.performance_matrix()
        a_s = self.signature_matrix(stimulus)
        a_p_scaled = a_p
        if self.spec_scales is not None:
            a_p_scaled = a_p / np.asarray(self.spec_scales, dtype=float)[:, None]
        mapping = LinearSignatureMap.from_sensitivities(
            a_p_scaled, a_s, sigma_m=self.sigma_m
        )
        variances = mapping.total_error_variances(self.sigma_m)
        return OptimizationResult(
            stimulus=stimulus,
            gene=result.best_gene,
            objective_value=result.best_fitness,
            ga_result=result,
            a_p=a_p,
            a_s=a_s,
            mapping=mapping,
            per_spec_error_std=np.sqrt(variances),
            sigma_m=self.sigma_m,
        )
