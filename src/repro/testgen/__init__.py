"""Signature-test generation: the paper's core contribution (Section 3).

The test-generation flow:

1. Estimate the performance sensitivity matrix ``A_p`` (specs vs process
   parameters) once (:mod:`repro.testgen.sensitivity`).
2. For a candidate stimulus, estimate the signature sensitivity ``A_s``.
3. Solve ``A = A_p A_s^+`` in the least-squares sense via SVD
   (:mod:`repro.testgen.mapping`, Equations 8-9) and evaluate the total
   per-spec prediction-error variance including the measurement-noise
   term (:mod:`repro.testgen.objective`, Equation 10).
4. Minimize the resulting objective over the PWL stimulus breakpoints
   with a genetic algorithm (:mod:`repro.testgen.genetic`,
   :mod:`repro.testgen.optimizer`).
"""

from repro.testgen.sensitivity import (
    finite_difference_jacobian,
    performance_sensitivity,
    signature_sensitivity,
)
from repro.testgen.mapping import LinearSignatureMap
from repro.testgen.objective import (
    prediction_error_variances,
    signature_test_objective,
    signature_noise_std,
)
from repro.testgen.genetic import GAConfig, GAResult, GeneticAlgorithm
from repro.testgen.pwl import StimulusEncoding
from repro.testgen.multitone import MultitoneEncoding, MultitoneStimulus
from repro.testgen.screening import ScreeningReport, screen_parameters
from repro.testgen.optimizer import (
    OptimizationResult,
    SignatureStimulusOptimizer,
)

__all__ = [
    "finite_difference_jacobian",
    "performance_sensitivity",
    "signature_sensitivity",
    "LinearSignatureMap",
    "prediction_error_variances",
    "signature_test_objective",
    "signature_noise_std",
    "GAConfig",
    "GAResult",
    "GeneticAlgorithm",
    "StimulusEncoding",
    "MultitoneEncoding",
    "MultitoneStimulus",
    "ScreeningReport",
    "screen_parameters",
    "OptimizationResult",
    "SignatureStimulusOptimizer",
]
