"""Top-level re-exports of the parallel execution engine.

``from repro.parallel import ProcessExecutor`` is the intended public
spelling; the implementation lives in :mod:`repro.runtime.executor`.
See ``docs/parallelism.md`` for the backend guide and the determinism
contract.
"""

from repro.runtime.executor import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    available_cpus,
    default_chunksize,
    get_executor,
    spawn_generators,
    spawn_seeds,
)

__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "available_cpus",
    "default_chunksize",
    "get_executor",
    "spawn_generators",
    "spawn_seeds",
]
